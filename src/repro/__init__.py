"""Failure Sentinels: low-cost, all-digital supply-voltage monitoring for
intermittent computation — a full reproduction of the ISCA 2021 paper.

Quick start::

    from repro import FailureSentinels, FSConfig, TECH_90NM

    fs = FailureSentinels(FSConfig(tech=TECH_90NM))
    fs.enroll()
    count = fs.sample(v_supply=2.4)
    volts = fs.read_voltage(count)

Subsystem tour:

* :mod:`repro.core` — the monitor itself (ring oscillator + divider +
  counter + enrollment);
* :mod:`repro.tech` — PTM-inspired technology cards, temperature and
  process-variation models;
* :mod:`repro.spice` — a small nodal circuit simulator for device-level
  validation;
* :mod:`repro.analog` — analytic models of the analog blocks and of the
  ADC/comparator incumbents;
* :mod:`repro.dse` — the multi-objective design-space exploration
  (NSGA-II + exhaustive grid);
* :mod:`repro.harvest` — the energy-harvesting intermittent-system
  simulator (Table IV / Figure 8);
* :mod:`repro.riscv` — an RV32IM instruction-set simulator with the
  paper's two custom instructions and a checkpointing runtime;
* :mod:`repro.soc` — structural area/power overhead modelling (Table II);
* :mod:`repro.experiments` — drivers regenerating every paper table and
  figure.
"""

from repro.core import FailureSentinels, FSConfig
from repro.tech import TECH_130NM, TECH_90NM, TECH_65NM, ALL_NODES, get_technology
from repro.analog import RingOscillator, VoltageDivider, LevelShifter, SARADC, AnalogComparator
from repro.errors import ReproError

#: Single source of truth for the package version; ``pyproject.toml``
#: reads it via ``[tool.setuptools.dynamic]`` and CI checks they agree.
__version__ = "1.8.0"

#: Names forwarded lazily from :mod:`repro.api` (PEP 562): the facade
#: pulls in the harvest/dse/fleet/batch stack, which a bare
#: ``import repro`` should not pay for.
_API_EXPORTS = (
    "IntermittentSimulator",
    "FastIntermittentSimulator",
    "SimulationReport",
    "Scenario",
    "evaluate_many",
    "compare_monitors",
    "normalized_app_time",
    "run_fleet",
    "run_workload",
    "IntermittentMachine",
    "stream_fleet",
    "explore_grid",
    "nsga2",
    "run_experiments",
    "BATCH_RTOL",
    "characterize_many",
    "fit_surrogate",
    "SurrogateModel",
    "RingSweep",
    "DividerSweep",
    "run_tasks",
    "TaskError",
    "ReproServer",
    "ServeClient",
    "TraceRecorder",
    "Recording",
    "replay",
    "diff_recordings",
)

__all__ = [
    "FailureSentinels",
    "FSConfig",
    "TECH_130NM",
    "TECH_90NM",
    "TECH_65NM",
    "ALL_NODES",
    "get_technology",
    "RingOscillator",
    "VoltageDivider",
    "LevelShifter",
    "SARADC",
    "AnalogComparator",
    "ReproError",
    "api",
    *_API_EXPORTS,
    "__version__",
]


def __getattr__(name):
    if name == "api" or name in _API_EXPORTS:
        import repro.api as api

        return api if name == "api" else getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
