"""Failure Sentinels: low-cost, all-digital supply-voltage monitoring for
intermittent computation — a full reproduction of the ISCA 2021 paper.

Quick start::

    from repro import FailureSentinels, FSConfig, TECH_90NM

    fs = FailureSentinels(FSConfig(tech=TECH_90NM))
    fs.enroll()
    count = fs.sample(v_supply=2.4)
    volts = fs.read_voltage(count)

Subsystem tour:

* :mod:`repro.core` — the monitor itself (ring oscillator + divider +
  counter + enrollment);
* :mod:`repro.tech` — PTM-inspired technology cards, temperature and
  process-variation models;
* :mod:`repro.spice` — a small nodal circuit simulator for device-level
  validation;
* :mod:`repro.analog` — analytic models of the analog blocks and of the
  ADC/comparator incumbents;
* :mod:`repro.dse` — the multi-objective design-space exploration
  (NSGA-II + exhaustive grid);
* :mod:`repro.harvest` — the energy-harvesting intermittent-system
  simulator (Table IV / Figure 8);
* :mod:`repro.riscv` — an RV32IM instruction-set simulator with the
  paper's two custom instructions and a checkpointing runtime;
* :mod:`repro.soc` — structural area/power overhead modelling (Table II);
* :mod:`repro.experiments` — drivers regenerating every paper table and
  figure.
"""

from repro.core import FailureSentinels, FSConfig
from repro.tech import TECH_130NM, TECH_90NM, TECH_65NM, ALL_NODES, get_technology
from repro.analog import RingOscillator, VoltageDivider, LevelShifter, SARADC, AnalogComparator
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "FailureSentinels",
    "FSConfig",
    "TECH_130NM",
    "TECH_90NM",
    "TECH_65NM",
    "ALL_NODES",
    "get_technology",
    "RingOscillator",
    "VoltageDivider",
    "LevelShifter",
    "SARADC",
    "AnalogComparator",
    "ReproError",
    "__version__",
]
