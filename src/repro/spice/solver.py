"""Numerical solvers: Newton DC operating point and backward-Euler transient.

The circuits this library simulates are small (a divider stack, a ring of
a dozen inverters, a level shifter), so the solver favours robustness and
clarity over asymptotic speed: residuals come straight from the devices'
KCL contributions and the Jacobian is built by finite differences with a
dense numpy solve.  Damped Newton with automatic source-stepping fallback
handles the strongly nonlinear MOSFET stacks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.obs import OBS
from repro.spice.netlist import Circuit, GROUND
from repro.spice.devices import VoltageSource
from repro.spice.waveform import TransientResult

#: Default Newton tolerances: residual in amps, update in volts.
RESIDUAL_TOL = 1e-9
UPDATE_TOL = 1e-7
MAX_ITERATIONS = 120
JACOBIAN_EPS = 1e-6


@dataclass
class DCSolution:
    """A converged operating point."""

    voltages: Dict[str, float]
    iterations: int

    def __getitem__(self, node: str) -> float:
        if node == GROUND:
            return 0.0
        return self.voltages[node]


def _voltage_map(nodes: List[str], x: np.ndarray) -> Dict[str, float]:
    volts = {GROUND: 0.0}
    for i, node in enumerate(nodes):
        volts[node] = float(x[i])
    return volts


def _residual_vector(circuit: Circuit, nodes: List[str], x: np.ndarray) -> np.ndarray:
    res = circuit.residual(_voltage_map(nodes, x))
    return np.array([res[n] for n in nodes])


def _jacobian(circuit: Circuit, nodes: List[str], x: np.ndarray, f0: np.ndarray) -> np.ndarray:
    n = len(nodes)
    jac = np.zeros((n, n))
    for j in range(n):
        xp = x.copy()
        xp[j] += JACOBIAN_EPS
        fj = _residual_vector(circuit, nodes, xp)
        jac[:, j] = (fj - f0) / JACOBIAN_EPS
    return jac


@dataclass
class NewtonOutcome:
    """One Newton attempt: the solution (or None) plus its diagnostics."""

    x: Optional[np.ndarray]
    iterations: int
    residual_norm: float

    @property
    def converged(self) -> bool:
        return self.x is not None


def _newton(circuit: Circuit, nodes: List[str], x0: np.ndarray, max_iter: int = MAX_ITERATIONS) -> NewtonOutcome:
    """Damped Newton iteration with convergence diagnostics."""
    x = x0.copy()
    residual_norm = math.inf
    for iteration in range(max_iter):
        f0 = _residual_vector(circuit, nodes, x)
        residual_norm = float(np.max(np.abs(f0)))
        if residual_norm < RESIDUAL_TOL:
            return NewtonOutcome(x, iteration, residual_norm)
        jac = _jacobian(circuit, nodes, x, f0)
        try:
            dx = np.linalg.solve(jac, -f0)
        except np.linalg.LinAlgError:
            jac += np.eye(len(nodes)) * 1e-12
            try:
                dx = np.linalg.solve(jac, -f0)
            except np.linalg.LinAlgError:
                return NewtonOutcome(None, iteration + 1, residual_norm)
        # Damping: limit per-iteration voltage movement to 0.5 V so the
        # exponential subthreshold region cannot fling the iterate.
        max_step = np.max(np.abs(dx))
        if max_step > 0.5:
            dx *= 0.5 / max_step
        x = x + dx
        if max_step < UPDATE_TOL and residual_norm < 1e2 * RESIDUAL_TOL:
            return NewtonOutcome(x, iteration + 1, residual_norm)
    return NewtonOutcome(None, max_iter, residual_norm)


def dc_operating_point(circuit: Circuit, initial: Optional[Mapping[str, float]] = None) -> DCSolution:
    """Solve the DC operating point with Newton + source stepping.

    ``initial`` optionally seeds node voltages (e.g. from a previous
    nearby solve, which dramatically speeds voltage sweeps).
    """
    circuit.validate()
    nodes = circuit.nodes()
    x0 = np.zeros(len(nodes))
    if initial:
        for i, node in enumerate(nodes):
            x0[i] = initial.get(node, 0.0)

    with OBS.tracer.span("spice.dc", circuit=circuit.title) as sp:
        outcome = _newton(circuit, nodes, x0)
        iterations = outcome.iterations
        if not outcome.converged:
            OBS.metrics.incr("spice.source_stepping_fallbacks")
            OBS.tracer.event(
                "spice.dc.source_stepping",
                circuit=circuit.title,
                residual_norm=outcome.residual_norm,
            )
            outcome = _source_stepping(circuit, nodes, x0)
            iterations += outcome.iterations
        OBS.metrics.incr("spice.dc_solves")
        OBS.metrics.incr("spice.newton_iterations", iterations)
        sp.set(iterations=iterations)
        if not outcome.converged:
            OBS.metrics.incr("spice.dc_convergence_failures")
            raise ConvergenceError(
                f"DC solve failed for {circuit.title!r}",
                iterations=iterations,
                residual_norm=outcome.residual_norm,
            )
        return DCSolution(voltages=_voltage_map(nodes, outcome.x), iterations=iterations)


def _source_stepping(circuit: Circuit, nodes: List[str], x0: np.ndarray) -> NewtonOutcome:
    """Ramp all voltage sources from 0 to full value in steps."""
    sources = [d for d in circuit.devices if isinstance(d, VoltageSource)]
    targets = [s.voltage for s in sources]
    x = x0.copy()
    iterations = 0
    try:
        for frac in (0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
            for src, tgt in zip(sources, targets):
                src.voltage = tgt * frac
            outcome = _newton(circuit, nodes, x)
            iterations += outcome.iterations
            if not outcome.converged:
                return NewtonOutcome(None, iterations, outcome.residual_norm)
            x = outcome.x
        return NewtonOutcome(x, iterations, outcome.residual_norm)
    finally:
        for src, tgt in zip(sources, targets):
            src.voltage = tgt


def transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    probes: Optional[Dict[str, Callable[[Mapping[str, float]], float]]] = None,
    initial: Optional[Mapping[str, float]] = None,
    on_step: Optional[Callable[[float, Mapping[str, float]], None]] = None,
) -> TransientResult:
    """Backward-Euler transient analysis.

    Parameters
    ----------
    t_stop, dt:
        Simulation horizon and fixed step size (s).
    probes:
        Optional named callables evaluated on the node-voltage map at
        every accepted step (e.g. a source's delivered current).
    initial:
        Node voltages at t=0.  When omitted, a DC operating point is
        computed first.  Pass explicit voltages to start an oscillator
        out of equilibrium.
    on_step:
        Callback after each accepted step — used by enable-sequencing
        helpers to toggle switches mid-run.
    """
    circuit.validate()
    nodes = circuit.nodes()

    if initial is None:
        op = dc_operating_point(circuit)
        volts = dict(op.voltages)
    else:
        volts = {GROUND: 0.0}
        for node in nodes:
            volts[node] = float(initial.get(node, 0.0))

    for dev in circuit.devices:
        dev.reset_state(volts)

    result = TransientResult()
    x = np.array([volts[n] for n in nodes])
    t = 0.0
    probes = probes or {}
    result.record(t, _voltage_map(nodes, x), {k: f(_voltage_map(nodes, x)) for k, f in probes.items()})

    steps = int(round(t_stop / dt))
    newton_iterations = 0
    with OBS.tracer.span(
        "spice.transient", circuit=circuit.title, t_stop=t_stop, dt=dt, steps=steps
    ) as sp:
        for _ in range(steps):
            t += dt
            for dev in circuit.devices:
                dev.begin_step(dt)
            outcome = _newton(circuit, nodes, x)
            newton_iterations += outcome.iterations
            if not outcome.converged:
                # Retry once from a flat start before giving up.  A
                # restart can converge onto a *different* DC branch than
                # the trajectory was on, so it is never silent: it is
                # counted, traced, and recorded on the result for
                # callers to inspect.
                failed = outcome
                OBS.metrics.incr("spice.step_convergence_failures")
                outcome = _newton(circuit, nodes, np.zeros(len(nodes)))
                newton_iterations += outcome.iterations
                if not outcome.converged:
                    OBS.metrics.incr("spice.transient_aborts")
                    raise ConvergenceError(
                        f"transient step failed for {circuit.title!r}",
                        t=t,
                        iterations=failed.iterations + outcome.iterations,
                        residual_norm=outcome.residual_norm,
                    )
                result.restarts.append(t)
                OBS.metrics.incr("spice.transient_restarts")
                OBS.tracer.event(
                    "spice.transient.restart",
                    circuit=circuit.title,
                    t=t,
                    iterations=failed.iterations,
                    residual_norm=failed.residual_norm,
                )
            x = outcome.x
            vmap = _voltage_map(nodes, x)
            for dev in circuit.devices:
                dev.commit_step(vmap)
            result.record(t, vmap, {k: f(vmap) for k, f in probes.items()})
            if on_step is not None:
                on_step(t, vmap)
        OBS.metrics.incr("spice.transient_steps", steps)
        OBS.metrics.incr("spice.newton_iterations", newton_iterations)
        sp.set(iterations=newton_iterations, restarts=len(result.restarts))
    return result
