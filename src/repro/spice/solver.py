"""Numerical solvers: Newton DC operating point and backward-Euler transient.

The circuits this library simulates are small (a divider stack, a ring of
a dozen inverters, a level shifter), but they sit on the hot path of every
circuit-level workload, so the solver has a fast default and a simple
fallback:

* ``jacobian="stamp"`` (default) — devices assemble their residual and
  analytic Jacobian directly into preallocated numpy arrays through an
  integer node-index map (:class:`_System`).  Linear devices are folded
  into a conductance matrix once per Newton solve; only the nonlinear
  devices are revisited per iteration.
* ``jacobian="fd"`` — the original path: residuals from the devices' KCL
  dicts and a whole-circuit finite-difference Jacobian.  Kept as a
  cross-check and for exotic hand-written devices.

Damped Newton with automatic source-stepping fallback handles the
strongly nonlinear MOSFET stacks; source stepping scales the sources
through the solve (``_System.vsrc_scale``) instead of writing the device
objects, so concurrent solves sharing a circuit cannot race.

The transient supports fixed-step backward Euler (the original
semantics, including the recorded restart-from-zeros recovery) and an
adaptive mode (``adaptive=True``) that grows/shrinks dt on Newton
iteration count and *rejects* failed steps — retrying the same step at a
smaller dt — instead of restarting from zeros.  An optional ``until``
callable ends the run early (used by ring-oscillator characterization to
stop once the extracted period converges; see
:mod:`repro.spice.charlib`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.obs import OBS
from repro.spice.netlist import Circuit, Device, GROUND
from repro.spice.devices import (
    Capacitor,
    CurrentSource,
    Resistor,
    Switch,
    VoltageSource,
)
from repro.spice.waveform import TransientResult

#: Default Newton tolerances: residual in amps, update in volts.
RESIDUAL_TOL = 1e-9
UPDATE_TOL = 1e-7
MAX_ITERATIONS = 120
JACOBIAN_EPS = 1e-6

#: Jacobian assembly modes accepted by the solver entry points.
JACOBIAN_MODES = ("stamp", "fd")

# Adaptive-dt policy: grow the step after an easy solve, shrink it after
# a laboured one, halve it (bounded by dt_min) on a rejected step.
GROW_ITERATIONS = 8
SHRINK_ITERATIONS = 24
DT_GROWTH = 2.0
DT_MIN_FRACTION = 1.0 / 64.0
DT_MAX_FACTOR = 8.0


@dataclass
class DCSolution:
    """A converged operating point."""

    voltages: Dict[str, float]
    iterations: int

    def __getitem__(self, node: str) -> float:
        if node == GROUND:
            return 0.0
        return self.voltages[node]


def _voltage_map(nodes: List[str], x: np.ndarray) -> Dict[str, float]:
    volts = {GROUND: 0.0}
    for i, node in enumerate(nodes):
        volts[node] = float(x[i])
    return volts


def _residual_vector(circuit: Circuit, nodes: List[str], x: np.ndarray) -> np.ndarray:
    res = circuit.residual(_voltage_map(nodes, x))
    return np.array([res[n] for n in nodes])


def _jacobian(circuit: Circuit, nodes: List[str], x: np.ndarray, f0: np.ndarray) -> np.ndarray:
    n = len(nodes)
    jac = np.zeros((n, n))
    for j in range(n):
        xp = x.copy()
        xp[j] += JACOBIAN_EPS
        fj = _residual_vector(circuit, nodes, xp)
        jac[:, j] = (fj - f0) / JACOBIAN_EPS
    return jac


class _System:
    """A circuit compiled for repeated Newton solves.

    Holds the node ordering, integer terminal indices per device, and
    scratch arrays sized ``n + 1``: the extra slot is the ground node,
    pinned at 0 V, so device stamps never branch on ground — its row and
    column are simply discarded before the linear solve.

    ``vsrc_scale`` scales every :class:`VoltageSource` *through the
    assembly* (residual shift only; the conductance is unchanged), which
    is how source stepping ramps supplies without mutating shared device
    objects.
    """

    def __init__(self, circuit: Circuit, jacobian: str = "stamp"):
        if jacobian not in JACOBIAN_MODES:
            raise ConfigurationError(
                f"unknown jacobian mode {jacobian!r}; expected one of {JACOBIAN_MODES}"
            )
        self.circuit = circuit
        self.jacobian_mode = jacobian
        self.vsrc_scale = 1.0
        self.nodes = circuit.nodes()
        n = len(self.nodes)
        self.n = n
        index = {node: i for i, node in enumerate(self.nodes)}
        index[GROUND] = n
        self.index = index
        self.devices = circuit.devices
        self._idx = [
            tuple(index[t] for t in dev.terminals) for dev in self.devices
        ]
        base = Device
        self.dynamic = [
            dev
            for dev in self.devices
            if type(dev).begin_step is not base.begin_step
            or type(dev).commit_step is not base.commit_step
        ]
        self._linear: list = []
        self._sources: list = []
        self._nonlinear: list = []
        for dev, idx in zip(self.devices, self._idx):
            if isinstance(dev, (Resistor, Switch, Capacitor, CurrentSource, VoltageSource)):
                self._linear.append((dev, idx))
                if isinstance(dev, VoltageSource):
                    self._sources.append((dev, idx))
            else:
                self._nonlinear.append((dev, idx))
        self._x_ext = np.zeros(n + 1)
        self._g = np.zeros((n + 1, n + 1))
        self._b = np.zeros(n + 1)

    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Refresh the linear (conductance + constant) stamps.

        Called once per Newton solve: switch state, capacitor companion
        values (dt, previous voltage), writable source voltages and the
        source-stepping scale may all have changed since the last solve,
        but none of them change *within* one.
        """
        if self.jacobian_mode != "stamp":
            return
        g = self._g
        b = self._b
        g[:] = 0.0
        b[:] = 0.0
        scale = self.vsrc_scale
        for dev, idx in self._linear:
            ia, ib = idx
            if isinstance(dev, Resistor):
                self._conductance(g, ia, ib, 1.0 / dev.resistance)
            elif isinstance(dev, Switch):
                r = dev.on_resistance if dev.closed else dev.off_resistance
                self._conductance(g, ia, ib, 1.0 / r)
            elif isinstance(dev, Capacitor):
                if dev._dt > 0.0:
                    geq = dev.capacitance / dev._dt
                    self._conductance(g, ia, ib, geq)
                    shift = geq * dev._v_prev
                    b[ia] -= shift
                    b[ib] += shift
            elif isinstance(dev, VoltageSource):
                gc = dev.conductance
                self._conductance(g, ia, ib, gc)
                shift = gc * scale * dev.voltage
                b[ia] -= shift
                b[ib] += shift
            else:  # CurrentSource
                b[ia] += dev.current
                b[ib] -= dev.current

    @staticmethod
    def _conductance(g: np.ndarray, ia: int, ib: int, gv: float) -> None:
        g[ia, ia] += gv
        g[ib, ib] += gv
        g[ia, ib] -= gv
        g[ib, ia] -= gv

    # ------------------------------------------------------------------
    def stamp(self, x: np.ndarray):
        """Residual and Jacobian at ``x`` via device stamps."""
        n = self.n
        xe = self._x_ext
        xe[:n] = x
        xe[n] = 0.0
        res = self._g @ xe + self._b
        jac = self._g.copy()
        for dev, idx in self._nonlinear:
            dev.stamp(xe, idx, jac, res)
        return res[:n], jac[:n, :n]

    # ------------------------------------------------------------------
    def residual_vector(self, x: np.ndarray) -> np.ndarray:
        """Legacy dict-path residual (fd mode), source scale applied."""
        f = _residual_vector(self.circuit, self.nodes, x)
        scale = self.vsrc_scale
        if scale != 1.0:
            n = self.n
            for dev, (ipos, ineg) in self._sources:
                shift = (1.0 - scale) * dev.voltage * dev.conductance
                if ipos < n:
                    f[ipos] += shift
                if ineg < n:
                    f[ineg] -= shift
        return f

    def fd_jacobian(self, x: np.ndarray, f0: np.ndarray) -> np.ndarray:
        n = len(self.nodes)
        jac = np.zeros((n, n))
        for j in range(n):
            xp = x.copy()
            xp[j] += JACOBIAN_EPS
            jac[:, j] = (self.residual_vector(xp) - f0) / JACOBIAN_EPS
        return jac


@dataclass
class NewtonOutcome:
    """One Newton attempt: the solution (or None) plus its diagnostics."""

    x: Optional[np.ndarray]
    iterations: int
    residual_norm: float

    @property
    def converged(self) -> bool:
        return self.x is not None


def _newton(circuit, nodes: List[str], x0: np.ndarray, max_iter: int = MAX_ITERATIONS) -> NewtonOutcome:
    """Damped Newton iteration with convergence diagnostics.

    ``circuit`` is normally a compiled :class:`_System`; a raw
    :class:`Circuit` is accepted for backward compatibility and wrapped
    on the spot.
    """
    system = circuit if isinstance(circuit, _System) else _System(circuit)
    system.prepare()
    use_stamp = system.jacobian_mode == "stamp"
    x = x0.copy()
    residual_norm = math.inf
    for iteration in range(max_iter):
        if use_stamp:
            f0, jac = system.stamp(x)
        else:
            f0 = system.residual_vector(x)
            jac = None
        residual_norm = float(np.max(np.abs(f0)))
        if residual_norm < RESIDUAL_TOL:
            return NewtonOutcome(x, iteration, residual_norm)
        if jac is None:
            jac = system.fd_jacobian(x, f0)
        try:
            dx = np.linalg.solve(jac, -f0)
        except np.linalg.LinAlgError:
            jac += np.eye(len(nodes)) * 1e-12
            try:
                dx = np.linalg.solve(jac, -f0)
            except np.linalg.LinAlgError:
                return NewtonOutcome(None, iteration + 1, residual_norm)
        # Damping: limit per-iteration voltage movement to 0.5 V so the
        # exponential subthreshold region cannot fling the iterate.
        max_step = np.max(np.abs(dx))
        if max_step > 0.5:
            dx *= 0.5 / max_step
        x = x + dx
        if max_step < UPDATE_TOL and residual_norm < 1e2 * RESIDUAL_TOL:
            return NewtonOutcome(x, iteration + 1, residual_norm)
    return NewtonOutcome(None, max_iter, residual_norm)


def dc_operating_point(
    circuit: Circuit,
    initial: Optional[Mapping[str, float]] = None,
    *,
    jacobian: str = "stamp",
) -> DCSolution:
    """Solve the DC operating point with Newton + source stepping.

    ``initial`` optionally seeds node voltages (e.g. from a previous
    nearby solve, which dramatically speeds voltage sweeps).
    ``jacobian`` selects analytic device stamps (default) or the
    finite-difference fallback.
    """
    circuit.validate()
    system = _System(circuit, jacobian=jacobian)
    nodes = system.nodes
    x0 = np.zeros(len(nodes))
    if initial:
        for i, node in enumerate(nodes):
            x0[i] = initial.get(node, 0.0)

    with OBS.tracer.span("spice.dc", circuit=circuit.title) as sp:
        outcome = _newton(system, nodes, x0)
        iterations = outcome.iterations
        if not outcome.converged:
            OBS.metrics.incr("spice.source_stepping_fallbacks")
            OBS.tracer.event(
                "spice.dc.source_stepping",
                circuit=circuit.title,
                residual_norm=outcome.residual_norm,
            )
            outcome = _source_stepping(system, nodes, x0)
            iterations += outcome.iterations
        OBS.metrics.incr("spice.dc_solves")
        OBS.metrics.incr(f"spice.dc_solves_{system.jacobian_mode}")
        OBS.metrics.incr("spice.newton_iterations", iterations)
        sp.set(iterations=iterations, jacobian=system.jacobian_mode)
        if not outcome.converged:
            OBS.metrics.incr("spice.dc_convergence_failures")
            raise ConvergenceError(
                f"DC solve failed for {circuit.title!r}",
                iterations=iterations,
                residual_norm=outcome.residual_norm,
            )
        return DCSolution(voltages=_voltage_map(nodes, outcome.x), iterations=iterations)


def _source_stepping(system: _System, nodes: List[str], x0: np.ndarray) -> NewtonOutcome:
    """Ramp all voltage sources from 0 to full value in steps.

    The ramp rides ``system.vsrc_scale`` through the assembly — the
    :class:`VoltageSource` objects themselves are never written, so
    concurrent solves sharing a circuit cannot observe a partial ramp.
    """
    x = x0.copy()
    iterations = 0
    outcome = NewtonOutcome(None, 0, math.inf)
    try:
        for frac in (0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
            system.vsrc_scale = frac
            outcome = _newton(system, nodes, x)
            iterations += outcome.iterations
            if not outcome.converged:
                return NewtonOutcome(None, iterations, outcome.residual_norm)
            x = outcome.x
        return NewtonOutcome(x, iterations, outcome.residual_norm)
    finally:
        system.vsrc_scale = 1.0


def transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    probes: Optional[Dict[str, Callable[[Mapping[str, float]], float]]] = None,
    initial: Optional[Mapping[str, float]] = None,
    on_step: Optional[Callable[[float, Mapping[str, float]], None]] = None,
    *,
    jacobian: str = "stamp",
    adaptive: bool = False,
    dt_min: Optional[float] = None,
    dt_max: Optional[float] = None,
    until: Optional[Callable[[float, Mapping[str, float]], bool]] = None,
) -> TransientResult:
    """Backward-Euler transient analysis.

    Parameters
    ----------
    t_stop, dt:
        Simulation horizon and step size (s).  With ``adaptive=False``
        (default) ``dt`` is fixed, exactly as before.
    probes:
        Optional named callables evaluated on the node-voltage map at
        every accepted step (e.g. a source's delivered current).  The
        map is built once per accepted step and shared between probes,
        ``on_step`` and ``until``.
    initial:
        Node voltages at t=0.  When omitted, a DC operating point is
        computed first.  Pass explicit voltages to start an oscillator
        out of equilibrium.
    on_step:
        Callback after each accepted step — used by enable-sequencing
        helpers to toggle switches mid-run.
    jacobian:
        ``"stamp"`` (analytic device stamps, default) or ``"fd"``.
    adaptive:
        Adaptive time-stepping: dt grows after easy Newton solves
        (≤ :data:`GROW_ITERATIONS` iterations), shrinks after laboured
        ones, and a failed step is *rejected* — retried at a smaller dt
        down to ``dt_min`` — instead of restarting from zeros.
        ``dt_min``/``dt_max`` default to ``dt/64`` and ``dt*8``.
    until:
        Optional early-exit predicate called as ``until(t, volts)``
        after each accepted step; returning True ends the run.
    """
    circuit.validate()
    system = _System(circuit, jacobian=jacobian)
    nodes = system.nodes

    if initial is None:
        op = dc_operating_point(circuit, jacobian=jacobian)
        volts = dict(op.voltages)
    else:
        volts = {GROUND: 0.0}
        for node in nodes:
            volts[node] = float(initial.get(node, 0.0))

    for dev in system.devices:
        dev.reset_state(volts)

    result = TransientResult()
    x = np.array([volts[n] for n in nodes])
    probes = probes or {}
    vmap = _voltage_map(nodes, x)
    result.record(0.0, vmap, {k: f(vmap) for k, f in probes.items()})

    if adaptive:
        return _transient_adaptive(
            system, result, x, t_stop, dt, dt_min, dt_max, probes, on_step, until
        )
    return _transient_fixed(system, result, x, t_stop, dt, probes, on_step, until)


def _transient_fixed(
    system: _System,
    result: TransientResult,
    x: np.ndarray,
    t_stop: float,
    dt: float,
    probes: Dict[str, Callable],
    on_step: Optional[Callable],
    until: Optional[Callable],
) -> TransientResult:
    """Fixed-dt loop with the recorded restart-from-zeros recovery."""
    circuit = system.circuit
    nodes = system.nodes
    steps = int(round(t_stop / dt))
    newton_iterations = 0
    accepted = 0
    t = 0.0
    with OBS.tracer.span(
        "spice.transient", circuit=circuit.title, t_stop=t_stop, dt=dt, steps=steps
    ) as sp:
        for _ in range(steps):
            t += dt
            for dev in system.dynamic:
                dev.begin_step(dt)
            outcome = _newton(system, nodes, x)
            newton_iterations += outcome.iterations
            if not outcome.converged:
                # Retry once from a flat start before giving up.  A
                # restart can converge onto a *different* DC branch than
                # the trajectory was on, so it is never silent: it is
                # counted, traced, and recorded on the result for
                # callers to inspect.
                failed = outcome
                OBS.metrics.incr("spice.step_convergence_failures")
                outcome = _newton(system, nodes, np.zeros(len(nodes)))
                newton_iterations += outcome.iterations
                if not outcome.converged:
                    OBS.metrics.incr("spice.transient_aborts")
                    raise ConvergenceError(
                        f"transient step failed for {circuit.title!r}",
                        t=t,
                        iterations=failed.iterations + outcome.iterations,
                        residual_norm=outcome.residual_norm,
                    )
                result.restarts.append(t)
                OBS.metrics.incr("spice.transient_restarts")
                OBS.tracer.event(
                    "spice.transient.restart",
                    circuit=circuit.title,
                    t=t,
                    iterations=failed.iterations,
                    residual_norm=failed.residual_norm,
                )
            x = outcome.x
            accepted += 1
            vmap = _voltage_map(nodes, x)
            for dev in system.dynamic:
                dev.commit_step(vmap)
            result.record(t, vmap, {k: f(vmap) for k, f in probes.items()})
            if on_step is not None:
                on_step(t, vmap)
            if until is not None and until(t, vmap):
                break
        OBS.metrics.incr("spice.transient_steps", accepted)
        OBS.metrics.incr(f"spice.transient_solves_{system.jacobian_mode}", accepted)
        OBS.metrics.incr("spice.newton_iterations", newton_iterations)
        sp.set(
            iterations=newton_iterations,
            restarts=len(result.restarts),
            accepted=accepted,
            jacobian=system.jacobian_mode,
        )
    return result


def _transient_adaptive(
    system: _System,
    result: TransientResult,
    x: np.ndarray,
    t_stop: float,
    dt: float,
    dt_min: Optional[float],
    dt_max: Optional[float],
    probes: Dict[str, Callable],
    on_step: Optional[Callable],
    until: Optional[Callable],
) -> TransientResult:
    """Adaptive-dt loop: grow/shrink on iteration count, reject failures."""
    circuit = system.circuit
    nodes = system.nodes
    dt_min = dt * DT_MIN_FRACTION if dt_min is None else dt_min
    dt_max = dt * DT_MAX_FACTOR if dt_max is None else dt_max
    if not 0.0 < dt_min <= dt <= dt_max:
        raise ConfigurationError(
            f"need 0 < dt_min <= dt <= dt_max, got {dt_min} <= {dt} <= {dt_max}"
        )
    h = dt
    t = 0.0
    accepted = rejected = 0
    newton_iterations = 0
    with OBS.tracer.span(
        "spice.transient",
        circuit=circuit.title,
        t_stop=t_stop,
        dt=dt,
        adaptive=True,
    ) as sp:
        while t < t_stop * (1.0 - 1e-12):
            h_step = min(h, t_stop - t)
            for dev in system.dynamic:
                dev.begin_step(h_step)
            outcome = _newton(system, nodes, x)
            newton_iterations += outcome.iterations
            if not outcome.converged:
                rejected += 1
                OBS.metrics.incr("spice.rejected_steps")
                if h_step <= dt_min * (1.0 + 1e-12):
                    OBS.metrics.incr("spice.transient_aborts")
                    raise ConvergenceError(
                        f"transient step failed for {circuit.title!r} at minimum dt",
                        t=t + h_step,
                        iterations=outcome.iterations,
                        residual_norm=outcome.residual_norm,
                    )
                h = max(h_step / 2.0, dt_min)
                continue
            t += h_step
            accepted += 1
            x = outcome.x
            vmap = _voltage_map(nodes, x)
            for dev in system.dynamic:
                dev.commit_step(vmap)
            result.record(t, vmap, {k: f(vmap) for k, f in probes.items()})
            if on_step is not None:
                on_step(t, vmap)
            if until is not None and until(t, vmap):
                break
            if outcome.iterations <= GROW_ITERATIONS:
                h = min(h * DT_GROWTH, dt_max)
            elif outcome.iterations >= SHRINK_ITERATIONS:
                h = max(h / DT_GROWTH, dt_min)
        result.rejected_steps = rejected
        OBS.metrics.incr("spice.transient_steps", accepted)
        OBS.metrics.incr(f"spice.transient_solves_{system.jacobian_mode}", accepted)
        OBS.metrics.incr("spice.newton_iterations", newton_iterations)
        sp.set(
            iterations=newton_iterations,
            accepted=accepted,
            rejected=rejected,
            jacobian=system.jacobian_mode,
        )
    return result
