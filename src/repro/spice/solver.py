"""Numerical solvers: Newton DC operating point and backward-Euler transient.

The circuits this library simulates are small (a divider stack, a ring of
a dozen inverters, a level shifter), so the solver favours robustness and
clarity over asymptotic speed: residuals come straight from the devices'
KCL contributions and the Jacobian is built by finite differences with a
dense numpy solve.  Damped Newton with automatic source-stepping fallback
handles the strongly nonlinear MOSFET stacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.spice.netlist import Circuit, GROUND
from repro.spice.devices import VoltageSource
from repro.spice.waveform import TransientResult

#: Default Newton tolerances: residual in amps, update in volts.
RESIDUAL_TOL = 1e-9
UPDATE_TOL = 1e-7
MAX_ITERATIONS = 120
JACOBIAN_EPS = 1e-6


@dataclass
class DCSolution:
    """A converged operating point."""

    voltages: Dict[str, float]
    iterations: int

    def __getitem__(self, node: str) -> float:
        if node == GROUND:
            return 0.0
        return self.voltages[node]


def _voltage_map(nodes: List[str], x: np.ndarray) -> Dict[str, float]:
    volts = {GROUND: 0.0}
    for i, node in enumerate(nodes):
        volts[node] = float(x[i])
    return volts


def _residual_vector(circuit: Circuit, nodes: List[str], x: np.ndarray) -> np.ndarray:
    res = circuit.residual(_voltage_map(nodes, x))
    return np.array([res[n] for n in nodes])


def _jacobian(circuit: Circuit, nodes: List[str], x: np.ndarray, f0: np.ndarray) -> np.ndarray:
    n = len(nodes)
    jac = np.zeros((n, n))
    for j in range(n):
        xp = x.copy()
        xp[j] += JACOBIAN_EPS
        fj = _residual_vector(circuit, nodes, xp)
        jac[:, j] = (fj - f0) / JACOBIAN_EPS
    return jac


def _newton(circuit: Circuit, nodes: List[str], x0: np.ndarray, max_iter: int = MAX_ITERATIONS) -> Optional[np.ndarray]:
    """Damped Newton iteration; returns the solution or None."""
    x = x0.copy()
    for iteration in range(max_iter):
        f0 = _residual_vector(circuit, nodes, x)
        if np.max(np.abs(f0)) < RESIDUAL_TOL:
            return x
        jac = _jacobian(circuit, nodes, x, f0)
        try:
            dx = np.linalg.solve(jac, -f0)
        except np.linalg.LinAlgError:
            jac += np.eye(len(nodes)) * 1e-12
            try:
                dx = np.linalg.solve(jac, -f0)
            except np.linalg.LinAlgError:
                return None
        # Damping: limit per-iteration voltage movement to 0.5 V so the
        # exponential subthreshold region cannot fling the iterate.
        max_step = np.max(np.abs(dx))
        if max_step > 0.5:
            dx *= 0.5 / max_step
        x = x + dx
        if max_step < UPDATE_TOL and np.max(np.abs(f0)) < 1e2 * RESIDUAL_TOL:
            return x
    return None


def dc_operating_point(circuit: Circuit, initial: Optional[Mapping[str, float]] = None) -> DCSolution:
    """Solve the DC operating point with Newton + source stepping.

    ``initial`` optionally seeds node voltages (e.g. from a previous
    nearby solve, which dramatically speeds voltage sweeps).
    """
    circuit.validate()
    nodes = circuit.nodes()
    x0 = np.zeros(len(nodes))
    if initial:
        for i, node in enumerate(nodes):
            x0[i] = initial.get(node, 0.0)

    x = _newton(circuit, nodes, x0)
    if x is None:
        x = _source_stepping(circuit, nodes, x0)
    if x is None:
        raise ConvergenceError(f"DC solve failed for {circuit.title!r}")
    return DCSolution(voltages=_voltage_map(nodes, x), iterations=0)


def _source_stepping(circuit: Circuit, nodes: List[str], x0: np.ndarray) -> Optional[np.ndarray]:
    """Ramp all voltage sources from 0 to full value in steps."""
    sources = [d for d in circuit.devices if isinstance(d, VoltageSource)]
    targets = [s.voltage for s in sources]
    x = x0.copy()
    try:
        for frac in (0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
            for src, tgt in zip(sources, targets):
                src.voltage = tgt * frac
            nxt = _newton(circuit, nodes, x)
            if nxt is None:
                return None
            x = nxt
        return x
    finally:
        for src, tgt in zip(sources, targets):
            src.voltage = tgt


def transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    probes: Optional[Dict[str, Callable[[Mapping[str, float]], float]]] = None,
    initial: Optional[Mapping[str, float]] = None,
    on_step: Optional[Callable[[float, Mapping[str, float]], None]] = None,
) -> TransientResult:
    """Backward-Euler transient analysis.

    Parameters
    ----------
    t_stop, dt:
        Simulation horizon and fixed step size (s).
    probes:
        Optional named callables evaluated on the node-voltage map at
        every accepted step (e.g. a source's delivered current).
    initial:
        Node voltages at t=0.  When omitted, a DC operating point is
        computed first.  Pass explicit voltages to start an oscillator
        out of equilibrium.
    on_step:
        Callback after each accepted step — used by enable-sequencing
        helpers to toggle switches mid-run.
    """
    circuit.validate()
    nodes = circuit.nodes()

    if initial is None:
        op = dc_operating_point(circuit)
        volts = dict(op.voltages)
    else:
        volts = {GROUND: 0.0}
        for node in nodes:
            volts[node] = float(initial.get(node, 0.0))

    for dev in circuit.devices:
        dev.reset_state(volts)

    result = TransientResult()
    x = np.array([volts[n] for n in nodes])
    t = 0.0
    probes = probes or {}
    result.record(t, _voltage_map(nodes, x), {k: f(_voltage_map(nodes, x)) for k, f in probes.items()})

    steps = int(round(t_stop / dt))
    for _ in range(steps):
        t += dt
        for dev in circuit.devices:
            dev.begin_step(dt)
        nxt = _newton(circuit, nodes, x)
        if nxt is None:
            # Retry once from a flat start before giving up.
            nxt = _newton(circuit, nodes, np.zeros(len(nodes)))
            if nxt is None:
                raise ConvergenceError(f"transient step at t={t:.3e}s failed for {circuit.title!r}")
        x = nxt
        vmap = _voltage_map(nodes, x)
        for dev in circuit.devices:
            dev.commit_step(vmap)
        result.record(t, vmap, {k: f(vmap) for k, f in probes.items()})
        if on_step is not None:
            on_step(t, vmap)
    return result
