"""Waveform containers and the measurements experiments rely on.

A :class:`Waveform` is a sampled signal (time, value) supporting the
oscillator-centric measurements the paper's SPICE flow performs: rising
edge counting over a window (exactly what the Failure Sentinels counter
does in hardware), frequency estimation, and averages (for current/power
extraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import SimulationError


@dataclass
class Waveform:
    """A sampled scalar signal."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, t: float, v: float) -> None:
        if self.times and t <= self.times[-1]:
            raise SimulationError(f"non-monotonic time {t} after {self.times[-1]}")
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    # ------------------------------------------------------------------
    def rising_edges(self, threshold: float) -> List[float]:
        """Interpolated times of upward crossings of ``threshold``."""
        edges: List[float] = []
        for i in range(1, len(self.values)):
            lo, hi = self.values[i - 1], self.values[i]
            if lo < threshold <= hi:
                frac = (threshold - lo) / (hi - lo)
                t = self.times[i - 1] + frac * (self.times[i] - self.times[i - 1])
                edges.append(t)
        return edges

    def count_rising_edges(self, threshold: float, t_start: float = 0.0, t_stop: float = float("inf")) -> int:
        """Edge count in a window — the hardware counter's view."""
        return sum(1 for t in self.rising_edges(threshold) if t_start <= t <= t_stop)

    def frequency(self, threshold: float) -> float:
        """Mean oscillation frequency from edge-to-edge periods (Hz)."""
        edges = self.rising_edges(threshold)
        if len(edges) < 2:
            raise SimulationError("need >= 2 rising edges to measure frequency")
        span = edges[-1] - edges[0]
        return (len(edges) - 1) / span

    def average(self, t_start: float = 0.0, t_stop: float = float("inf")) -> float:
        """Time-weighted (trapezoidal) mean over a window."""
        pts = [(t, v) for t, v in zip(self.times, self.values) if t_start <= t <= t_stop]
        if len(pts) < 2:
            raise SimulationError("need >= 2 points inside window for average")
        area = 0.0
        for (t0, v0), (t1, v1) in zip(pts, pts[1:]):
            area += 0.5 * (v0 + v1) * (t1 - t0)
        return area / (pts[-1][0] - pts[0][0])

    def final(self) -> float:
        if not self.values:
            raise SimulationError("empty waveform")
        return self.values[-1]

    def minimum(self) -> float:
        if not self.values:
            raise SimulationError("empty waveform")
        return min(self.values)

    def maximum(self) -> float:
        if not self.values:
            raise SimulationError("empty waveform")
        return max(self.values)


@dataclass
class TransientResult:
    """Node waveforms plus any per-device probe waveforms.

    ``restarts`` lists the times at which a failed Newton step was
    recovered by re-solving from a flat (all-zero) start (fixed-dt mode
    only).  A restart can settle on a different DC branch than the
    trajectory it replaced, so consumers that care about waveform
    continuity (oscillator frequency measurements, monotonic ramps)
    should treat a non-empty list as a data-quality warning rather than
    silently trusting the waveform.

    ``rejected_steps`` counts steps the adaptive integrator rejected and
    retried at a smaller dt (``transient(..., adaptive=True)``); the
    waveform itself only contains accepted steps, so rejections are an
    efficiency signal, not a correctness one.
    """

    node_waveforms: Dict[str, Waveform] = field(default_factory=dict)
    probe_waveforms: Dict[str, Waveform] = field(default_factory=dict)
    restarts: List[float] = field(default_factory=list)
    rejected_steps: int = 0

    def node(self, name: str) -> Waveform:
        try:
            return self.node_waveforms[name]
        except KeyError:
            known = ", ".join(sorted(self.node_waveforms))
            raise SimulationError(f"no waveform for node {name!r}; have: {known}") from None

    def probe(self, name: str) -> Waveform:
        try:
            return self.probe_waveforms[name]
        except KeyError:
            known = ", ".join(sorted(self.probe_waveforms))
            raise SimulationError(f"no probe {name!r}; have: {known}") from None

    def record(self, t: float, voltages: Dict[str, float], probes: Dict[str, float]) -> None:
        for node, v in voltages.items():
            self.node_waveforms.setdefault(node, Waveform()).append(t, v)
        for name, v in probes.items():
            self.probe_waveforms.setdefault(name, Waveform()).append(t, v)
