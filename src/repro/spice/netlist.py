"""Circuit netlists: named nodes plus two-or-more-terminal devices.

A :class:`Circuit` is a flat container of devices referencing nodes by
name.  Node ``"0"`` (alias :data:`GROUND`) is the reference and always
exists.  The solver assigns indices to every other node mentioned by a
device.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.errors import NetlistError

#: Reference node name.  Its voltage is 0 by definition.
GROUND = "0"

#: Perturbation for the generic per-device finite-difference stamp.
STAMP_FD_EPS = 1e-7


class Device:
    """Base class for circuit elements.

    Subclasses define ``terminals`` (node names) and implement
    :meth:`currents`, returning the current flowing *out of each terminal
    node into the device* given the node-voltage map.  Optionally they
    carry state for transient analysis via :meth:`begin_step` /
    :meth:`commit_step`, and an analytic :meth:`stamp` for the solver's
    fast assembly path (the base implementation falls back to per-device
    finite differences over :meth:`currents`, so any device works).
    """

    name: str
    terminals: Sequence[str]

    def currents(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        raise NotImplementedError

    def stamp(self, x, idx, jac, res) -> None:
        """Accumulate KCL residual and Jacobian contributions.

        ``x`` is the extended node-voltage vector (the solver appends a
        ground slot pinned at 0 V) and ``idx`` holds this device's
        terminal positions in it.  Contributions are ``+=``-accumulated
        into ``res`` (length ``n+1``) and, when not ``None``, ``jac``
        (``(n+1, n+1)``); the solver discards the ground row/column.

        This fallback finite-differences :meth:`currents` over the
        device's own terminals only — already far cheaper than a
        whole-circuit difference — while subclasses with closed-form
        derivatives override it entirely.
        """
        cols: Dict[str, int] = {}
        for terminal, i in zip(self.terminals, idx):
            cols[terminal] = i
        volts = {terminal: float(x[i]) for terminal, i in cols.items()}
        base = self.currents(volts)
        for node, current in base.items():
            res[cols[node]] += current
        if jac is None:
            return
        for terminal, col in cols.items():
            bumped = dict(volts)
            bumped[terminal] += STAMP_FD_EPS
            for node, current in self.currents(bumped).items():
                jac[cols[node], col] += (current - base[node]) / STAMP_FD_EPS

    # -- transient hooks ------------------------------------------------
    def begin_step(self, dt: float) -> None:
        """Called before each transient Newton solve with the step size."""

    def commit_step(self, voltages: Mapping[str, float]) -> None:
        """Called after a transient step converges, with final voltages."""

    def reset_state(self, voltages: Mapping[str, float]) -> None:
        """Initialize dynamic state from a DC solution."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nodes = ",".join(self.terminals)
        return f"<{type(self).__name__} {self.name} ({nodes})>"


class Circuit:
    """A named collection of devices over a shared node namespace."""

    def __init__(self, title: str = "circuit"):
        self.title = title
        self._devices: List[Device] = []
        self._names: set = set()

    # ------------------------------------------------------------------
    def add(self, device: Device) -> Device:
        """Register a device; returns it for chaining/holding."""
        if not device.name:
            raise NetlistError("device must have a non-empty name")
        if device.name in self._names:
            raise NetlistError(f"duplicate device name {device.name!r}")
        if len(device.terminals) < 2:
            raise NetlistError(f"device {device.name!r} needs >= 2 terminals")
        self._names.add(device.name)
        self._devices.append(device)
        return device

    def extend(self, devices: Iterable[Device]) -> None:
        for device in devices:
            self.add(device)

    @property
    def devices(self) -> List[Device]:
        return list(self._devices)

    def device(self, name: str) -> Device:
        """Look up a device by name."""
        for dev in self._devices:
            if dev.name == name:
                return dev
        raise NetlistError(f"no device named {name!r}")

    def nodes(self) -> List[str]:
        """All non-ground node names, in first-mention order."""
        seen: List[str] = []
        seen_set = set()
        for dev in self._devices:
            for node in dev.terminals:
                if node != GROUND and node not in seen_set:
                    seen_set.add(node)
                    seen.append(node)
        return seen

    def node_count(self) -> int:
        """Number of unknowns the solver must find."""
        return len(self.nodes())

    def validate(self) -> None:
        """Sanity checks before solving.

        Every circuit must contain at least one device and reference
        ground somewhere (otherwise voltages are unconstrained).
        """
        if not self._devices:
            raise NetlistError("empty circuit")
        grounded = any(GROUND in dev.terminals for dev in self._devices)
        if not grounded:
            raise NetlistError("no device connects to ground; voltages unconstrained")

    def residual(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        """KCL residual: net current leaving each non-ground node.

        At the solution every entry is ~0.
        """
        res = {node: 0.0 for node in self.nodes()}
        for dev in self._devices:
            for node, current in dev.currents(voltages).items():
                if node != GROUND:
                    res[node] += current
        return res
