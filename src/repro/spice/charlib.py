"""Characterization library: batch circuit sweeps behind a persistent cache.

Every circuit-level workload in this repository — the fig1 frequency
curves, divider droop checks, fleet enrollment cross-checks, DSE
validation — reduces to the same access pattern the paper's LTspice flow
has: *characterize a circuit once, query the curve many times*.  This
module is the front door for that pattern, mirroring
:func:`repro.batch.evaluate_many`:

>>> from repro.spice.charlib import RingSweep, characterize_many
>>> sweep = RingSweep(tech=TECH_90NM, n_stages=5, voltages=(0.8, 1.0, 1.2))
>>> [result] = characterize_many([sweep], parallel=4)
>>> result.frequency      # Hz per sweep voltage

``engine=`` selects how curves are produced, mirroring
``evaluate_many(engine=)``:

* ``"exact"`` — every point is a real SPICE solve (cached);
* ``"surrogate"`` — answer from a certified
  :mod:`repro.spice.surrogate` interpolant, fitting one on demand when
  no cached model covers the request;
* ``"auto"`` (default) — use a certified surrogate when one already
  covers the request *and* its tolerance, fall back to exact
  otherwise.  With no fitted models this is byte-identical to
  ``"exact"``, so the default is fully backward compatible.

Results are cached in memory and (by default) on disk, keyed by a
fingerprint of *everything that determines the answer*: a schema
version, every field of the technology card, every field of the sweep
request, and the solver tolerances.  Editing a tech card therefore
busts the cache automatically — the key changes, the old entry is
simply never looked up again.  Set ``REPRO_CHARLIB_CACHE`` to move the
disk cache, or pass ``cache=CharacterizationCache(enabled=False)`` to
force cold runs.

Parallelism follows the fleet/batch idiom: the parent process resolves
every request against the cache first, fans only the misses out through
the :mod:`repro.exec` backbone, and is the sole cache writer — workers
never touch the cache, so parallel runs cannot race it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analog.divider import (
    VoltageDivider,
    build_divider_circuit,
    divider_tap_node,
)
from repro.analog.ring_oscillator import (
    RingOscillator,
    build_ro_circuit,
    staggered_initial_condition,
)
from repro.errors import ConfigurationError, ConvergenceError
from repro.exec import run_tasks
from repro.obs import OBS
from repro.spice import solver
from repro.spice.devices import VoltageSource
from repro.spice.waveform import Waveform
from repro.tech.ptm import TechnologyCard
from repro.units import ROOM_TEMP_K

#: Bump when the stored result layout or the simulation recipe changes;
#: old disk entries become unreachable (never deleted, never trusted).
SCHEMA_VERSION = 1

#: Documented tolerance between the fast path (stamped Jacobian +
#: early exit) and the finite-difference/full-horizon baseline for the
#: quantities charlib reports (frequency, current, tap voltage).  The
#: benchmark and the equivalence tests assert against this.
CHARLIB_RTOL = 0.02

#: Environment variable overriding the default on-disk cache location.
CACHE_ENV = "REPRO_CHARLIB_CACHE"

#: Valid values for ``characterize_many(engine=)``.
CHAR_ENGINES = ("auto", "exact", "surrogate")

#: Rising edges discarded before measuring frequency/current — the
#: staggered start needs a couple of periods to settle into the limit
#: cycle.
SETTLE_EDGES = 2


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RingSweep:
    """Frequency/current-vs-voltage characterization of a device-level ring.

    ``periods`` bounds the simulated horizon per voltage point;
    ``early_exit`` (default) stops each run as soon as the extracted
    period has converged to ``period_rtol``, so the bound is rarely
    reached.  ``points_per_period`` sets the backward-Euler step from
    the analytic period estimate.
    """

    tech: TechnologyCard
    n_stages: int
    voltages: Tuple[float, ...]
    periods: int = 12
    points_per_period: int = 64
    temp_k: float = ROOM_TEMP_K
    load_cap: Optional[float] = None
    jacobian: str = "stamp"
    early_exit: bool = True
    period_rtol: float = 5e-3

    def __post_init__(self) -> None:
        object.__setattr__(self, "voltages", tuple(float(v) for v in self.voltages))
        if not self.voltages:
            raise ConfigurationError("RingSweep needs at least one voltage")
        if self.periods < 3 or self.points_per_period < 8:
            raise ConfigurationError("RingSweep horizon too short to measure a period")


@dataclass(frozen=True)
class DividerSweep:
    """Tap-voltage/current-vs-supply characterization of the PMOS divider."""

    tech: TechnologyCard
    voltages: Tuple[float, ...]
    tap: int = 1
    total: int = 3
    upper_width: float = 4.0
    load_resistance: Optional[float] = None
    temp_k: float = ROOM_TEMP_K
    jacobian: str = "stamp"

    def __post_init__(self) -> None:
        object.__setattr__(self, "voltages", tuple(float(v) for v in self.voltages))
        if not self.voltages:
            raise ConfigurationError("DividerSweep needs at least one voltage")
        # Validates tap/total/upper_width eagerly, at request-build time.
        VoltageDivider(self.tech, self.tap, self.total, self.upper_width)


SweepRequest = Union[RingSweep, DividerSweep]


@dataclass(frozen=True)
class SweepResult:
    """One characterized curve, aligned with the request's ``voltages``.

    ``frequency``/``current`` are populated for ring sweeps (a dead
    point — below the oscillation cutoff or non-converged — reports
    0.0); ``tap``/``current`` for divider sweeps.  ``fingerprint`` ties
    the result to the exact request (or, for ``source="surrogate"``,
    the certified model) that produced it.
    """

    kind: str
    fingerprint: str
    voltages: Tuple[float, ...]
    frequency: Tuple[float, ...] = ()
    current: Tuple[float, ...] = ()
    tap: Tuple[float, ...] = ()
    source: str = "exact"

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "voltages": list(self.voltages),
            "frequency": list(self.frequency),
            "current": list(self.current),
            "tap": list(self.tap),
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        return cls(
            kind=data["kind"],
            fingerprint=data["fingerprint"],
            voltages=tuple(data["voltages"]),
            frequency=tuple(data.get("frequency", ())),
            current=tuple(data.get("current", ())),
            tap=tuple(data.get("tap", ())),
            source=data.get("source", "exact"),
        )


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def fingerprint(request: SweepRequest) -> str:
    """Stable cache key for a sweep request.

    Canonical JSON over the schema version, the solver tolerances,
    *every* field of the technology card, and every field of the
    request.  Anything that can change the curve changes the key; a new
    tech-card field or solver tolerance bump invalidates transparently.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": type(request).__name__,
        "solver": {
            "residual_tol": solver.RESIDUAL_TOL,
            "update_tol": solver.UPDATE_TOL,
            "max_iterations": solver.MAX_ITERATIONS,
        },
        "tech": {
            f.name: getattr(request.tech, f.name)
            for f in dataclasses.fields(request.tech)
        },
        "request": {
            f.name: getattr(request, f.name)
            for f in dataclasses.fields(request)
            if f.name != "tech"
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Early exit: online period convergence
# ----------------------------------------------------------------------
class PeriodProbe:
    """Early-exit predicate for oscillator transients.

    Tracks rising crossings of ``threshold`` on ``node`` (linearly
    interpolated between accepted steps, matching
    :meth:`Waveform.rising_edges`) and reports convergence once the last
    ``window`` periods, after discarding ``settle`` start-up edges,
    agree within relative spread ``rtol``.  Pass an instance as
    ``transient(..., until=probe)``.
    """

    def __init__(self, node: str, threshold: float, rtol: float = 5e-3, settle: int = SETTLE_EDGES, window: int = 4):
        if rtol <= 0 or window < 2:
            raise ConfigurationError("PeriodProbe needs rtol > 0 and window >= 2")
        self.node = node
        self.threshold = threshold
        self.rtol = rtol
        self.settle = settle
        self.window = window
        self._t_prev: Optional[float] = None
        self._v_prev = 0.0
        self._edges: List[float] = []
        self.converged = False

    def __call__(self, t: float, volts) -> bool:
        v = volts[self.node]
        if self._t_prev is not None and self._v_prev < self.threshold <= v:
            frac = (self.threshold - self._v_prev) / (v - self._v_prev)
            self._edges.append(self._t_prev + frac * (t - self._t_prev))
        self._t_prev, self._v_prev = t, v
        usable = self._edges[self.settle :]
        if len(usable) < self.window + 1:
            return False
        recent = [
            usable[i + 1] - usable[i]
            for i in range(len(usable) - self.window - 1, len(usable) - 1)
        ]
        mean = sum(recent) / len(recent)
        if mean > 0 and (max(recent) - min(recent)) <= self.rtol * mean:
            self.converged = True
        return self.converged


# ----------------------------------------------------------------------
# Cold characterization
# ----------------------------------------------------------------------
def _measure_frequency(wave: Waveform, threshold: float) -> float:
    """Mean frequency, discarding start-up edges when there are enough."""
    edges = wave.rising_edges(threshold)
    if len(edges) >= SETTLE_EDGES + 2:
        edges = edges[SETTLE_EDGES:]
    if len(edges) < 2:
        return 0.0
    return (len(edges) - 1) / (edges[-1] - edges[0])


def _characterize_ring(request: RingSweep, fp: str) -> SweepResult:
    ro = RingOscillator(request.tech, request.n_stages)
    freqs: List[float] = []
    currents: List[float] = []
    for vdd in request.voltages:
        guess = ro.period(vdd, request.temp_k)
        if not (0.0 < guess < float("inf")):
            freqs.append(0.0)
            currents.append(0.0)
            continue
        circuit = build_ro_circuit(
            request.tech, request.n_stages, vdd,
            load_cap=request.load_cap, temp_k=request.temp_k,
        )
        supply = circuit.device("VDD")
        assert isinstance(supply, VoltageSource)
        until = (
            PeriodProbe("s0", vdd / 2, rtol=request.period_rtol)
            if request.early_exit
            else None
        )
        try:
            res = solver.transient(
                circuit,
                t_stop=request.periods * guess,
                dt=guess / request.points_per_period,
                probes={"i_vdd": supply.through},
                initial=staggered_initial_condition(request.n_stages, vdd),
                jacobian=request.jacobian,
                until=until,
            )
        except ConvergenceError:
            OBS.metrics.incr("spice.charlib_dead_points")
            freqs.append(0.0)
            currents.append(0.0)
            continue
        wave = res.node("s0")
        f = _measure_frequency(wave, vdd / 2)
        freqs.append(f)
        edges = wave.rising_edges(vdd / 2)
        t_start = edges[SETTLE_EDGES] if len(edges) > SETTLE_EDGES + 1 else 0.0
        currents.append(res.probe("i_vdd").average(t_start=t_start))
    return SweepResult(
        kind="RingSweep",
        fingerprint=fp,
        voltages=request.voltages,
        frequency=tuple(freqs),
        current=tuple(currents),
    )


def _characterize_divider(request: DividerSweep, fp: str) -> SweepResult:
    divider = VoltageDivider(request.tech, request.tap, request.total, request.upper_width)
    tap_node = divider_tap_node(divider)
    taps: List[float] = []
    currents: List[float] = []
    previous: Optional[Dict[str, float]] = None
    for v_supply in request.voltages:
        circuit = build_divider_circuit(
            divider, v_supply,
            load_resistance=request.load_resistance, temp_k=request.temp_k,
        )
        supply = circuit.device("VDD")
        assert isinstance(supply, VoltageSource)
        try:
            # Warm-start from the previous point: adjacent sweep
            # voltages have nearby operating points.
            op = solver.dc_operating_point(
                circuit, initial=previous, jacobian=request.jacobian
            )
        except ConvergenceError:
            OBS.metrics.incr("spice.charlib_dead_points")
            taps.append(0.0)
            currents.append(0.0)
            previous = None
            continue
        previous = op.voltages
        taps.append(op[tap_node])
        currents.append(supply.through(op.voltages))
    return SweepResult(
        kind="DividerSweep",
        fingerprint=fp,
        voltages=request.voltages,
        tap=tuple(taps),
        current=tuple(currents),
    )


def _characterize_one(request: SweepRequest, fp: Optional[str] = None) -> SweepResult:
    """Cold-run one sweep (no cache involvement; safe in workers)."""
    fp = fp or fingerprint(request)
    with OBS.tracer.span(
        "spice.characterize", kind=type(request).__name__, points=len(request.voltages)
    ):
        if isinstance(request, RingSweep):
            return _characterize_ring(request, fp)
        if isinstance(request, DividerSweep):
            return _characterize_divider(request, fp)
        raise ConfigurationError(f"unknown sweep request {type(request).__name__}")


def _characterize_pair(pair) -> SweepResult:
    """``(request, fingerprint)`` worker for the :mod:`repro.exec`
    fan-out (top-level so it pickles)."""
    request, fp = pair
    return _characterize_one(request, fp)


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
@dataclass
class CharlibStats:
    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    surrogate_hits: int = 0

    def summary(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.disk_hits} from disk, {self.surrogate_hits} surrogate"
        )


class CharacterizationCache:
    """Two-layer (memory + JSON-on-disk) store of :class:`SweepResult`.

    Disk entries are one human-readable JSON file per fingerprint,
    published with atomic ``os.replace`` — concurrent writers of the
    same key write identical bytes, so last-rename-wins is harmless.
    ``enabled=False`` makes every lookup a miss (the cold baseline the
    benchmark measures against).  ``cache_dir=None`` keeps the cache
    memory-only.

    The cache also stores certified
    :class:`repro.spice.surrogate.SurrogateModel` fits
    (``surrogate-*.json`` disk files) under
    :func:`~repro.spice.surrogate.model_fingerprint` keys — which
    include the tolerance and anchor schema, so a tightened tolerance
    is always a miss — and indexes them by circuit structure for the
    ``engine="auto"|"surrogate"`` dispatch.
    """

    def __init__(self, cache_dir: Optional[str] = None, enabled: bool = True):
        self.enabled = enabled
        self.cache_dir = cache_dir
        self._memory: Dict[str, SweepResult] = {}
        self._models: Dict[str, object] = {}
        self._model_index: Dict[tuple, List[object]] = {}
        self._models_scanned = False
        self.stats = CharlibStats()
        if cache_dir:
            try:
                os.makedirs(cache_dir, exist_ok=True)
            except OSError:
                # Unwritable location (read-only home, sandbox): degrade
                # to memory-only rather than failing characterization.
                self.cache_dir = None

    def __len__(self) -> int:
        return len(self._memory)

    # ------------------------------------------------------------------
    def get(self, fp: str) -> Optional[SweepResult]:
        if not self.enabled:
            self.stats.misses += 1
            return None
        result = self._memory.get(fp)
        if result is not None:
            self.stats.hits += 1
            OBS.metrics.incr("spice.charlib_hits")
            return result
        result = self._load_disk(fp)
        if result is not None:
            self._memory[fp] = result
            self.stats.disk_hits += 1
            OBS.metrics.incr("spice.charlib_hits")
            return result
        self.stats.misses += 1
        return None

    def put(self, fp: str, result: SweepResult) -> None:
        if not self.enabled:
            return
        self._memory[fp] = result
        self._store_disk(fp, result)

    # ------------------------------------------------------------------
    # Surrogate-model layer
    # ------------------------------------------------------------------
    def has_models(self) -> bool:
        """Whether any certified surrogate model is available — the
        ``engine="auto"`` gate (False means auto is exactly exact)."""
        if not self.enabled:
            return False
        if self._models:
            return True
        self._scan_models()
        return bool(self._models)

    def get_model(self, fp: str):
        """Certified model under ``fp`` (memory, then disk), or None."""
        if not self.enabled:
            return None
        model = self._models.get(fp)
        if model is None:
            self._scan_models()
            model = self._models.get(fp)
        return model

    def put_model(self, model) -> None:
        if not self.enabled:
            return
        self._index_model(model)
        path = self._model_path(model.fingerprint)
        if path is None:
            return
        try:
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(model.to_dict(), handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except (OSError, UnboundLocalError):
                pass

    def find_models(self, structure_key: tuple) -> List:
        """Models able to answer requests with this circuit structure,
        tightest tolerance first (deterministic order)."""
        if not self.enabled:
            return []
        self._scan_models()
        return self._model_index.get(structure_key, [])

    def _index_model(self, model) -> None:
        if model.fingerprint in self._models:
            return
        self._models[model.fingerprint] = model
        bucket = self._model_index.setdefault(model.structure_key(), [])
        bucket.append(model)
        bucket.sort(key=lambda m: (m.tolerance, m.v_anchors[0], -m.v_anchors[-1], m.fingerprint))

    def _model_path(self, fp: str) -> Optional[str]:
        if not self.cache_dir:
            return None
        return os.path.join(self.cache_dir, f"surrogate-{fp[:32]}.json")

    def _scan_models(self) -> None:
        """One-time lazy load of every ``surrogate-*.json`` disk model."""
        if self._models_scanned:
            return
        self._models_scanned = True
        if not self.cache_dir:
            return
        from repro.spice.surrogate import SurrogateModel
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return
        for name in sorted(names):
            if not (name.startswith("surrogate-") and name.endswith(".json")):
                continue
            try:
                with open(os.path.join(self.cache_dir, name), "r", encoding="utf-8") as handle:
                    data = json.load(handle)
                model = SurrogateModel.from_dict(data)
            except (OSError, ValueError, KeyError, TypeError, ConfigurationError):
                continue  # unreadable/stale-schema models are simply skipped
            self._index_model(model)

    # ------------------------------------------------------------------
    def _path(self, fp: str) -> Optional[str]:
        if not self.cache_dir:
            return None
        return os.path.join(self.cache_dir, f"charlib-{fp[:32]}.json")

    def _load_disk(self, fp: str) -> Optional[SweepResult]:
        path = self._path(fp)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if data.get("schema") != SCHEMA_VERSION or data.get("fingerprint") != fp:
            return None
        try:
            return SweepResult.from_dict(data)
        except (KeyError, TypeError):
            return None

    def _store_disk(self, fp: str, result: SweepResult) -> None:
        path = self._path(fp)
        if path is None:
            return
        try:
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(result.to_dict(), handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except (OSError, UnboundLocalError):
                pass


def default_cache_dir() -> str:
    """``$REPRO_CHARLIB_CACHE`` if set, else ``~/.cache/repro/charlib``."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "charlib")


_DEFAULT_CACHE: Optional[CharacterizationCache] = None


def default_cache() -> CharacterizationCache:
    """The process-wide shared cache (experiments, fleet, DSE all hit it)."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = CharacterizationCache(cache_dir=default_cache_dir())
    return _DEFAULT_CACHE


# ----------------------------------------------------------------------
# The front door
# ----------------------------------------------------------------------
def characterize_many(
    requests: Sequence[SweepRequest],
    *,
    engine: str = "auto",
    parallel: Optional[int] = None,
    cache: Optional[CharacterizationCache] = None,
    cache_dir: Optional[str] = None,
    tolerance: Optional[float] = None,
) -> List[SweepResult]:
    """Characterize a batch of sweeps, cached and optionally parallel.

    Mirrors :func:`repro.api.evaluate_many`: results come back in
    request order, duplicate requests share one result object, and
    ``engine`` picks the compute path (see the module docstring):
    ``"exact"`` solves, ``"surrogate"`` answers from certified
    interpolants (fitting on demand), ``"auto"`` uses a covering
    certified model when one exists and exact solves otherwise.
    ``tolerance`` is the certified relative tolerance surrogates must
    meet (default :data:`repro.spice.surrogate.DEFAULT_TOLERANCE`).

    ``cache`` defaults to the process-wide :func:`default_cache`; pass
    ``cache_dir`` to point a fresh cache at a specific directory
    instead, or a ``CharacterizationCache(enabled=False)`` to force
    cold runs.  ``parallel=k`` fans exact cache misses out over ``k``
    worker processes through :func:`repro.exec.run_tasks`
    (worker-recorded metrics merge back into the parent); the parent
    alone writes the cache.  Serial and parallel runs return identical
    results under every engine.
    """
    if engine not in CHAR_ENGINES:
        raise ConfigurationError(
            f"unknown characterization engine {engine!r}; pick one of {CHAR_ENGINES}"
        )
    requests = list(requests)
    if cache is None:
        cache = CharacterizationCache(cache_dir) if cache_dir else default_cache()
    if engine == "exact" or not requests:
        return _characterize_exact(requests, parallel=parallel, cache=cache)
    if engine == "auto" and not cache.has_models():
        # No certified models anywhere: auto is byte-identical to exact,
        # without paying any surrogate dispatch overhead.
        return _characterize_exact(requests, parallel=parallel, cache=cache)
    from repro.spice import surrogate

    if surrogate.np is None:
        if engine == "auto":
            return _characterize_exact(requests, parallel=parallel, cache=cache)
        raise ConfigurationError(
            "engine='surrogate' needs numpy; install it or use engine='exact'"
        )
    return surrogate.dispatch(
        requests, engine=engine, parallel=parallel, cache=cache, tolerance=tolerance
    )


def _characterize_exact(
    requests: List[SweepRequest],
    *,
    parallel: Optional[int] = None,
    cache: Optional[CharacterizationCache] = None,
) -> List[SweepResult]:
    """The exact-solve path: two-layer cache in front of the
    :mod:`repro.exec` fan-out (the pre-1.6 ``characterize_many``)."""
    if cache is None:
        cache = default_cache()
    fps = [fingerprint(r) for r in requests]
    with OBS.tracer.span("spice.characterize_many", requests=len(requests)) as sp:
        results: List[Optional[SweepResult]] = [cache.get(fp) for fp in fps]
        miss_idx = [i for i, r in enumerate(results) if r is None]
        # Distinct misses only: duplicated requests in one batch solve once.
        pending: Dict[str, List[int]] = {}
        for i in miss_idx:
            pending.setdefault(fps[i], []).append(i)
        OBS.metrics.incr("spice.charlib_misses", len(pending))
        if pending:
            first = [idx[0] for idx in pending.values()]
            fresh = run_tasks(
                _characterize_pair,
                [(requests[i], fps[i]) for i in first],
                parallel=parallel,
                label="charlib.characterize",
            )
            for result in fresh:
                cache.put(result.fingerprint, result)
                for i in pending[result.fingerprint]:
                    results[i] = result
        sp.set(hits=len(requests) - len(miss_idx), misses=len(pending))
    return results  # type: ignore[return-value]
