"""Certified surrogate characterization: interpolated V/f/P curves.

:mod:`repro.spice.charlib` caches *exact* SPICE sweeps, but every new
design point still pays a full solve.  The paper's monitor-design loop
(Section 4) queries frequency/power-vs-voltage curves per (tech node,
RO size, temperature) thousands of times across a DSE grid or a fleet
enrollment pass, and those curves are smooth — smooth enough that a
monotone interpolant fitted from a coarse *anchor grid* of real solves
reproduces them to a certified tolerance at a vanishing fraction of the
cost (the lumos ``InterpolatedUnivariateSpline`` pattern, done
rigorously).

This module provides that layer:

* :func:`fit_surrogate` — fit a pure-numpy **monotone PCHIP**
  (Fritsch–Carlson) interpolant over voltage (optionally × temperature)
  from exact :func:`~repro.spice.charlib.characterize_many` anchor
  solves, then **certify** it against held-out exact solves at every
  anchor-cell midpoint, bisecting the worst cells and refitting until
  the measured max error meets the user's tolerance;
* :class:`SurrogateModel` — the fitted, certified model: JSON
  round-trippable, stored in the two-layer
  :class:`~repro.spice.charlib.CharacterizationCache` under a
  fingerprint that covers the tolerance and anchor schema (tightening
  the tolerance can never resurface a looser model);
* :func:`dispatch` — the engine-selecting back half of
  ``characterize_many(engine="surrogate"|"auto")``: requests covered by
  a certified model evaluate vectorized in-process (microseconds per
  request), everything else falls back to exact solves.

Certification semantics: the certified error is **relative with an
absolute floor** — for each quantity ``q`` with exact values ``y`` the
model guarantees ``|model - y| <= tol * max(|y|, ABS_FLOOR_FRACTION *
max|y|)`` on the held-out grid.  The floor keeps near-zero tails (ring
current at the bottom of the range) from demanding unbounded relative
accuracy; see ``docs/surrogates.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, replace
from operator import attrgetter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs import OBS
from repro.spice import charlib, solver
from repro.spice.charlib import (
    CharacterizationCache,
    DividerSweep,
    RingSweep,
    SweepRequest,
    SweepResult,
)
from repro.tech.ptm import TechnologyCard

try:  # numpy backs fitting and vectorized evaluation
    import numpy as np
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None

#: Bump when the stored model layout or the fitting recipe changes;
#: old disk models become unreachable.
SURROGATE_SCHEMA_VERSION = 1

#: Default certified relative tolerance — matches the documented
#: fast-path/baseline curve tolerance, so a surrogate answer is no
#: looser than what the exact fast path already guarantees.
DEFAULT_TOLERANCE = charlib.CHARLIB_RTOL

#: Fraction of each quantity's full-scale magnitude used as the
#: absolute floor in the certified error metric.
ABS_FLOOR_FRACTION = 1e-3

#: Anchor-count start and refinement bound for :func:`fit_surrogate`.
DEFAULT_INITIAL_ANCHORS = 9
DEFAULT_MAX_ROUNDS = 6

#: Quantities each sweep kind characterizes (curve names on
#: :class:`~repro.spice.charlib.SweepResult`).
QUANTITIES = {
    "RingSweep": ("frequency", "current"),
    "DividerSweep": ("tap", "current"),
}

#: Request fields that select *which circuit/recipe* is being swept —
#: everything except the query axes (voltages, temp_k).  Models only
#: cover requests whose structural fields match their template exactly.
_STRUCTURE_FIELDS = {
    "RingSweep": (
        "n_stages", "periods", "points_per_period", "load_cap",
        "jacobian", "early_exit", "period_rtol",
    ),
    "DividerSweep": (
        "tap", "total", "upper_width", "load_resistance", "jacobian",
    ),
}

_STRUCTURE_GETTERS = {
    kind: attrgetter(*names) for kind, names in _STRUCTURE_FIELDS.items()
}


def _require_numpy() -> None:
    if np is None:
        raise ConfigurationError(
            "repro.spice.surrogate needs numpy; install it or use engine='exact'"
        )


# ----------------------------------------------------------------------
# Monotone PCHIP (Fritsch–Carlson), pure numpy
# ----------------------------------------------------------------------
def _edge_slope(h0, h1, d0, d1):
    """Shape-limited one-sided three-point endpoint derivative."""
    d = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1)
    d = np.where(d * d0 <= 0.0, 0.0, d)
    d = np.where((d0 * d1 < 0.0) & (np.abs(d) > 3.0 * np.abs(d0)), 3.0 * d0, d)
    return d


def pchip_slopes(x, y):
    """Fritsch–Carlson monotone derivatives at the knots.

    ``x`` is 1-D strictly increasing; ``y`` may carry trailing axes
    (slopes are taken along axis 0).  Where the data are monotone the
    resulting cubic Hermite interpolant is monotone; local extrema in
    the data get zero derivatives, so the interpolant never overshoots.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 1 or x.size < 2:
        raise ConfigurationError("pchip needs at least two knots")
    if np.any(np.diff(x) <= 0):
        raise ConfigurationError("pchip knots must be strictly increasing")
    h = np.diff(x).reshape((-1,) + (1,) * (y.ndim - 1))
    delta = np.diff(y, axis=0) / h
    d = np.zeros_like(y)
    if x.size == 2:
        d[0] = delta[0]
        d[1] = delta[0]
        return d
    w1 = 2.0 * h[1:] + h[:-1]
    w2 = h[1:] + 2.0 * h[:-1]
    prod = delta[:-1] * delta[1:]
    with np.errstate(divide="ignore", invalid="ignore"):
        harmonic = (w1 + w2) / (w1 / delta[:-1] + w2 / delta[1:])
    d[1:-1] = np.where(prod > 0.0, harmonic, 0.0)
    d[0] = _edge_slope(h[0], h[1], delta[0], delta[1])
    d[-1] = _edge_slope(h[-1], h[-2], delta[-1], delta[-2])
    return d


def pchip_eval(x, y, d, xq):
    """Evaluate the cubic Hermite interpolant ``(x, y, d)`` at ``xq``.

    Vectorized over ``xq``; queries are clamped to the knot span (the
    coverage checks in :func:`dispatch` guarantee in-range queries, the
    clamp just defuses float round-off at the endpoints).
    """
    xq = np.asarray(xq, dtype=float)
    i = np.clip(np.searchsorted(x, xq, side="right") - 1, 0, x.size - 2)
    h = x[i + 1] - x[i]
    t = np.clip((xq - x[i]) / h, 0.0, 1.0)
    t2 = t * t
    t3 = t2 * t
    return (
        (2.0 * t3 - 3.0 * t2 + 1.0) * y[i]
        + (t3 - 2.0 * t2 + t) * h * d[i]
        + (-2.0 * t3 + 3.0 * t2) * y[i + 1]
        + (t3 - t2) * h * d[i + 1]
    )


# ----------------------------------------------------------------------
# The model
# ----------------------------------------------------------------------
def _structure_pairs(request: SweepRequest) -> Tuple[Tuple[str, object], ...]:
    kind = type(request).__name__
    names = _STRUCTURE_FIELDS[kind]
    return tuple(zip(names, _STRUCTURE_GETTERS[kind](request)))


def model_fingerprint(
    kind: str,
    tech: TechnologyCard,
    structure: Tuple[Tuple[str, object], ...],
    v_range: Tuple[float, float],
    temps: Tuple[float, ...],
    tolerance: float,
    initial_anchors: int,
    max_rounds: int,
) -> str:
    """Cache key for a surrogate fit.

    Covers everything that determines the fitted model: the exact-solve
    fingerprint inputs (schema, solver tolerances, full tech card,
    structural request fields) *plus* the surrogate's own contract —
    voltage span, temperature anchors, **tolerance**, and the anchor
    schema.  Tightening the tolerance or reshaping the anchor grid
    therefore changes the key: a stale looser-tolerance model can never
    be served for a stricter request.
    """
    payload = {
        "schema": SURROGATE_SCHEMA_VERSION,
        "charlib_schema": charlib.SCHEMA_VERSION,
        "kind": kind,
        "solver": {
            "residual_tol": solver.RESIDUAL_TOL,
            "update_tol": solver.UPDATE_TOL,
            "max_iterations": solver.MAX_ITERATIONS,
        },
        "tech": {f.name: getattr(tech, f.name) for f in dataclasses.fields(tech)},
        "structure": list(structure),
        "v_range": list(v_range),
        "temps": list(temps),
        "tolerance": tolerance,
        "anchors": {"initial": initial_anchors, "max_rounds": max_rounds},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class SurrogateModel:
    """A fitted, certified interpolant over (voltage[, temperature]).

    ``values[q][i][j]`` holds quantity ``q``'s exact anchor solve at
    ``temps[i]`` × ``v_anchors[j]``.  Evaluation interpolates PCHIP
    across temperature per anchor voltage (when more than one anchor
    temperature exists), then PCHIP across voltage — and is certified
    *as evaluated*, midpoints of both axes included.

    ``certified_error`` is the measured max mixed relative error on the
    held-out grid (``cert_points`` exact solves); it is guaranteed to be
    at most ``tolerance``.  ``scales`` records each quantity's
    full-scale magnitude for the absolute floor of that metric.
    """

    kind: str
    tech: TechnologyCard
    structure: Tuple[Tuple[str, object], ...]
    temps: Tuple[float, ...]
    v_anchors: Tuple[float, ...]
    values: Dict[str, Tuple[Tuple[float, ...], ...]]
    scales: Dict[str, float]
    tolerance: float
    certified_error: float
    cert_points: int
    rounds: int
    fingerprint: str
    _rows: Dict = field(default_factory=dict, compare=False, repr=False)

    # ------------------------------------------------------------------
    def structure_key(self) -> Tuple:
        """Index key shared with requests this model can answer."""
        return (self.kind, self.tech, self.structure)

    def covers(self, v_lo: float, v_hi: float, temp_k: float, tolerance: float) -> bool:
        """Whether this model certifies ``[v_lo, v_hi]`` at ``temp_k``
        to at least ``tolerance``."""
        if self.tolerance > tolerance * (1.0 + 1e-12):
            return False
        eps = 1e-9 * max(1.0, abs(self.v_anchors[-1]))
        if v_lo < self.v_anchors[0] - eps or v_hi > self.v_anchors[-1] + eps:
            return False
        if len(self.temps) == 1:
            return abs(temp_k - self.temps[0]) <= 1e-6
        return self.temps[0] - 1e-6 <= temp_k <= self.temps[-1] + 1e-6

    # ------------------------------------------------------------------
    def _row(self, temp_k: float):
        """``(y, d)`` voltage-curve arrays per quantity at ``temp_k``
        (memoized per queried temperature)."""
        key = float(temp_k)
        row = self._rows.get(key)
        if row is not None:
            return row
        _require_numpy()
        x = np.asarray(self.v_anchors)
        row = {}
        temps = np.asarray(self.temps)
        for qty, grid in self.values.items():
            g = np.asarray(grid, dtype=float)
            if temps.size == 1:
                y = g[0]
            else:
                i = np.searchsorted(temps, key)
                if i < temps.size and abs(temps[i] - key) <= 1e-9:
                    y = g[i]  # exact anchor temperature: no cross-temp pass
                else:
                    # Scalar query against the 2D grid evaluates every
                    # anchor-voltage column in one shot.
                    y = pchip_eval(temps, g, pchip_slopes(temps, g), key)
            row[qty] = (y, pchip_slopes(x, y))
        self._rows[key] = row
        return row

    def evaluate(self, voltages: Sequence[float], temp_k: float) -> Dict[str, List[float]]:
        """Interpolated quantities at ``voltages`` (plain-float lists)."""
        _require_numpy()
        row = self._row(temp_k)
        x = np.asarray(self.v_anchors)
        xq = np.asarray(voltages, dtype=float)
        return {
            qty: pchip_eval(x, y, d, xq).tolist() for qty, (y, d) in row.items()
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": SURROGATE_SCHEMA_VERSION,
            "kind": self.kind,
            "tech": {
                f.name: getattr(self.tech, f.name)
                for f in dataclasses.fields(self.tech)
            },
            "structure": [[name, value] for name, value in self.structure],
            "temps": list(self.temps),
            "v_anchors": list(self.v_anchors),
            "values": {q: [list(row) for row in grid] for q, grid in self.values.items()},
            "scales": dict(self.scales),
            "tolerance": self.tolerance,
            "certified_error": self.certified_error,
            "cert_points": self.cert_points,
            "rounds": self.rounds,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SurrogateModel":
        if data.get("schema") != SURROGATE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"surrogate schema {data.get('schema')!r} != {SURROGATE_SCHEMA_VERSION}"
            )
        return cls(
            kind=data["kind"],
            tech=TechnologyCard(**data["tech"]),
            structure=tuple((name, value) for name, value in data["structure"]),
            temps=tuple(data["temps"]),
            v_anchors=tuple(data["v_anchors"]),
            values={
                q: tuple(tuple(row) for row in grid)
                for q, grid in data["values"].items()
            },
            scales=dict(data["scales"]),
            tolerance=data["tolerance"],
            certified_error=data["certified_error"],
            cert_points=data["cert_points"],
            rounds=data["rounds"],
            fingerprint=data["fingerprint"],
        )


# ----------------------------------------------------------------------
# Fitting + certification
# ----------------------------------------------------------------------
def _point_request(template: SweepRequest, temp_k: float, v: float) -> SweepRequest:
    return replace(template, voltages=(v,), temp_k=temp_k)


def _exact_points(
    template: SweepRequest,
    points: List[Tuple[float, float]],
    quantities: Tuple[str, ...],
    parallel: Optional[int],
    cache: CharacterizationCache,
) -> Dict[Tuple[float, float], Dict[str, float]]:
    """Exact solves at ``(temp, voltage)`` points, one cache entry each.

    Single-voltage requests make every point its own cache key, so
    anchor solves are shared across refinement rounds, refits at other
    tolerances, and plain exact characterization of the same points.
    """
    requests = [_point_request(template, t, v) for t, v in points]
    results = charlib.characterize_many(
        requests, engine="exact", parallel=parallel, cache=cache
    )
    out = {}
    for point, result in zip(points, results):
        out[point] = {qty: getattr(result, qty)[0] for qty in quantities}
    return out


def _midpoints(knots: Sequence[float]) -> List[float]:
    return [0.5 * (a + b) for a, b in zip(knots[:-1], knots[1:])]


def _certify(
    model: SurrogateModel,
    exact: Dict[Tuple[float, float], Dict[str, float]],
    cert_points: List[Tuple[float, float]],
    quantities: Tuple[str, ...],
) -> Tuple[float, Tuple[float, float]]:
    """Max mixed relative error over ``cert_points`` and its argmax."""
    worst = 0.0
    worst_point = cert_points[0]
    by_temp: Dict[float, List[float]] = {}
    for t, v in cert_points:
        by_temp.setdefault(t, []).append(v)
    for t, volts in by_temp.items():
        predicted = model.evaluate(volts, t)
        for j, v in enumerate(volts):
            truth = exact[(t, v)]
            for qty in quantities:
                y = truth[qty]
                denom = max(abs(y), ABS_FLOOR_FRACTION * model.scales[qty])
                err = abs(predicted[qty][j] - y) / denom
                if err > worst:
                    worst, worst_point = err, (t, v)
    return worst, worst_point


def fit_surrogate(
    template: SweepRequest,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    temps: Optional[Sequence[float]] = None,
    initial_anchors: int = DEFAULT_INITIAL_ANCHORS,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    parallel: Optional[int] = None,
    cache: Optional[CharacterizationCache] = None,
) -> SurrogateModel:
    """Fit and certify a surrogate over ``template``'s voltage span.

    ``template``'s ``voltages`` define the covered span ``[min, max]``
    (a single voltage is padded ±10% so on-demand fits for point
    queries still interpolate); its other fields fix the circuit and
    solve recipe.  ``temps`` adds anchor temperatures (default: the
    template's ``temp_k`` only — the model then covers that exact
    temperature; two or more temps cover the whole span between them).

    The fit loop: solve the anchor grid exactly, fit the PCHIP model,
    solve the held-out midpoints (both axes) exactly, measure the worst
    mixed relative error — and if it exceeds ``tolerance``, bisect
    every voltage cell (and anchor temperature gap) containing a
    failing held-out point and refit, reusing every prior solve through
    the characterization cache.  Raises
    :class:`~repro.errors.ConfigurationError` when ``max_rounds``
    refinements cannot reach the tolerance.

    The certified model is stored in (and, when already present,
    returned straight from) ``cache`` under
    :func:`model_fingerprint` — which includes the tolerance and anchor
    schema, so distinct contracts never collide.
    """
    _require_numpy()
    if tolerance <= 0:
        raise ConfigurationError("surrogate tolerance must be positive")
    if initial_anchors < 3:
        raise ConfigurationError("surrogate needs at least 3 initial anchors")
    kind = type(template).__name__
    if kind not in QUANTITIES:
        raise ConfigurationError(f"unknown sweep request {kind}")
    cache = cache if cache is not None else charlib.default_cache()
    quantities = QUANTITIES[kind]
    structure = _structure_pairs(template)

    v_lo, v_hi = min(template.voltages), max(template.voltages)
    if v_hi <= v_lo:
        v_lo, v_hi = 0.9 * v_lo, 1.1 * v_hi
    temp_list = sorted(set(float(t) for t in (temps or ())) | {float(template.temp_k)})

    fp = model_fingerprint(
        kind, template.tech, structure, (v_lo, v_hi), tuple(temp_list),
        tolerance, initial_anchors, max_rounds,
    )
    existing = cache.get_model(fp)
    if existing is not None:
        return existing

    anchors = np.linspace(v_lo, v_hi, initial_anchors).tolist()
    with OBS.tracer.span(
        "spice.surrogate_fit", kind=kind, tech=template.tech.name,
        tolerance=tolerance,
    ) as span:
        for round_no in range(max_rounds + 1):
            v_mids = _midpoints(anchors)
            t_mids = _midpoints(temp_list)
            anchor_points = [(t, v) for t in temp_list for v in anchors]
            cert_points = [(t, v) for t in temp_list for v in v_mids]
            cert_points += [(t, v) for t in t_mids for v in anchors + v_mids]
            exact = _exact_points(
                template, anchor_points + cert_points, quantities, parallel, cache
            )
            _check_alive(exact, quantities, kind)
            values = {
                qty: tuple(
                    tuple(exact[(t, v)][qty] for v in anchors) for t in temp_list
                )
                for qty in quantities
            }
            scales = {
                qty: max(abs(y[qty]) for y in exact.values()) or 1.0
                for qty in quantities
            }
            model = SurrogateModel(
                kind=kind,
                tech=template.tech,
                structure=structure,
                temps=tuple(temp_list),
                v_anchors=tuple(anchors),
                values=values,
                scales=scales,
                tolerance=tolerance,
                certified_error=0.0,
                cert_points=len(cert_points),
                rounds=round_no,
                fingerprint=fp,
            )
            worst, worst_point = _certify(model, exact, cert_points, quantities)
            if worst <= tolerance:
                model.certified_error = worst
                cache.put_model(model)
                span.set(rounds=round_no, anchors=len(anchors), error=worst)
                OBS.metrics.incr("spice.surrogate_fits")
                return model
            # Refine: bisect every failing voltage cell (its midpoint is
            # already solved — this round's held-out point becomes next
            # round's anchor) and any failing anchor-temperature gap.
            failing_v, failing_t = set(), set()
            mid_v = set(v_mids)
            mid_t = set(t_mids)
            for t, v in cert_points:
                predicted = model.evaluate([v], t)
                truth = exact[(t, v)]
                for qty in quantities:
                    denom = max(abs(truth[qty]), ABS_FLOOR_FRACTION * scales[qty])
                    if abs(predicted[qty][0] - truth[qty]) / denom > tolerance:
                        # Bisect voltage first; only charge the
                        # temperature axis when the voltage there is
                        # already an anchor (so it cannot be at fault).
                        if v in mid_v:
                            failing_v.add(v)
                        elif t in mid_t:
                            failing_t.add(t)
            if not failing_v and not failing_t:
                # Worst point sits on an anchor voltage at a midpoint
                # temperature (or vice versa) — bisect around the argmax.
                t_bad, v_bad = worst_point
                if v_bad in mid_v:
                    failing_v.add(v_bad)
                if t_bad in mid_t:
                    failing_t.add(t_bad)
            anchors = sorted(set(anchors) | failing_v)
            temp_list = sorted(set(temp_list) | failing_t)
    raise ConfigurationError(
        f"surrogate for {kind} ({template.tech.name}) did not certify: "
        f"error {worst:.3e} > tolerance {tolerance:.3e} after {max_rounds} "
        f"refinement rounds ({len(anchors)} anchors); loosen the tolerance "
        f"or narrow the voltage span"
    )


def _check_alive(exact, quantities, kind: str) -> None:
    """The primary quantity must be live at every solved point —
    surrogates only certify over the oscillating/converged region."""
    primary = quantities[0]
    for (t, v), values in exact.items():
        if values[primary] <= 0.0:
            raise ConfigurationError(
                f"{kind} surrogate anchor at {v:.3f} V / {t:.1f} K is dead "
                f"({primary} <= 0); raise the voltage span above the "
                f"oscillation/convergence cutoff"
            )


def fit_variation_family(
    template: SweepRequest,
    variation,
    count: int,
    *,
    base_seed: int = 0,
    tolerance: float = DEFAULT_TOLERANCE,
    temps: Optional[Sequence[float]] = None,
    parallel: Optional[int] = None,
    cache: Optional[CharacterizationCache] = None,
) -> List[SurrogateModel]:
    """One certified surrogate per manufactured chip.

    Samples ``count`` process-variation cards from ``variation`` (a
    :class:`~repro.tech.variation.ProcessVariation`) and fits a model
    per chip.  Each chip pays only its anchor/certification solves —
    dense per-device curve queries (fleet enrollment, Monte-Carlo
    sweeps) then cost microseconds — and refits of the same chip at the
    same contract are cache hits.
    """
    models = []
    for chip in variation.population(template.tech, count, base_seed=base_seed):
        chip_template = replace(template, tech=chip.card)
        models.append(
            fit_surrogate(
                chip_template,
                tolerance=tolerance,
                temps=temps,
                parallel=parallel,
                cache=cache,
            )
        )
    return models


# ----------------------------------------------------------------------
# Engine dispatch (the back half of charlib.characterize_many)
# ----------------------------------------------------------------------
def _fast_result(kind, fingerprint, voltages, quantities, curves, offset):
    """Build a surrogate :class:`SweepResult` without dataclass-init
    overhead — this runs once per request on the 10^5-request hot path."""
    result = object.__new__(SweepResult)
    d = {
        "kind": kind,
        "fingerprint": fingerprint,
        "voltages": voltages,
        "frequency": (),
        "current": (),
        "tap": (),
        "source": "surrogate",
    }
    n = len(voltages)
    for qty in quantities:
        d[qty] = tuple(curves[qty][offset:offset + n])
    result.__dict__.update(d)
    return result


def dispatch(
    requests: List[SweepRequest],
    *,
    engine: str,
    parallel: Optional[int],
    cache: CharacterizationCache,
    tolerance: Optional[float],
) -> List[SweepResult]:
    """Surrogate-aware request routing for ``engine="surrogate"|"auto"``.

    Requests covered by a certified cached model are answered by one
    vectorized interpolant evaluation per (model, temperature) group;
    the rest fall back to exact characterization (``engine="auto"``) or
    trigger an on-demand :func:`fit_surrogate` per uncovered circuit
    group (``engine="surrogate"``).  Results come back in request
    order, duplicate requests share one result object (matching the
    exact cache's semantics), and the exact fallback fans out through
    :func:`repro.exec.run_tasks` exactly as ``engine="exact"`` does —
    so serial and parallel runs are identical.
    """
    _require_numpy()
    tol = DEFAULT_TOLERANCE if tolerance is None else float(tolerance)
    n = len(requests)
    results: List[Optional[SweepResult]] = [None] * n
    seen: Dict[tuple, int] = {}       # dispatch key -> first index
    aliases: List[Tuple[int, int]] = []
    exact_idx: List[int] = []
    # (id(model), temp) -> [voltage list, [(index, v_count), ...]]
    groups: Dict[tuple, list] = {}
    model_by_gid: Dict[int, SurrogateModel] = {}
    # cheap per-call circuit key -> list of candidate models (or None)
    candidates_memo: Dict[tuple, list] = {}
    uncovered: Dict[tuple, list] = {}  # circuit key -> request indices (surrogate engine)

    for i, req in enumerate(requests):
        kind = type(req).__name__
        circuit_key = (kind, id(req.tech)) + _STRUCTURE_GETTERS[kind](req)
        key = (circuit_key, req.voltages, req.temp_k)
        first = seen.get(key)
        if first is not None:
            aliases.append((i, first))
            continue
        seen[key] = i
        candidates = candidates_memo.get(circuit_key)
        if candidates is None:
            candidates = cache.find_models((kind, req.tech, _structure_pairs(req)))
            candidates_memo[circuit_key] = candidates
        v_lo, v_hi = min(req.voltages), max(req.voltages)
        model = None
        for candidate in candidates:
            if candidate.covers(v_lo, v_hi, req.temp_k, tol):
                model = candidate
                break
        if model is None:
            if engine == "auto":
                exact_idx.append(i)
            else:
                uncovered.setdefault(circuit_key, []).append(i)
            continue
        _enqueue(groups, model_by_gid, model, req, i)

    # engine="surrogate": fit one model per uncovered circuit group over
    # the union of its requests' spans, then route the group through it.
    for circuit_key, idxs in uncovered.items():
        reqs = [requests[i] for i in idxs]
        span = [v for r in reqs for v in (min(r.voltages), max(r.voltages))]
        temp_set = sorted({r.temp_k for r in reqs})
        template = replace(reqs[0], voltages=(min(span), max(span)))
        model = fit_surrogate(
            template, tolerance=tol, temps=temp_set, parallel=parallel, cache=cache
        )
        for i in idxs:
            _enqueue(groups, model_by_gid, model, requests[i], i)

    if exact_idx:
        OBS.metrics.incr("spice.surrogate_fallbacks", len(exact_idx))
        for i, result in zip(
            exact_idx,
            charlib._characterize_exact(
                [requests[i] for i in exact_idx], parallel=parallel, cache=cache
            ),
        ):
            results[i] = result

    hits = 0
    for (gid, temp_k), (volts, members) in groups.items():
        model = model_by_gid[gid]
        curves = model.evaluate(volts, temp_k)
        mfp = model.fingerprint
        kind = model.kind
        quantities = QUANTITIES[kind]
        offset = 0
        for i, count in members:
            results[i] = _fast_result(
                kind, mfp, requests[i].voltages, quantities, curves, offset
            )
            offset += count
        hits += len(members)
    if hits:
        OBS.metrics.incr("spice.surrogate_hits", hits)
        cache.stats.surrogate_hits += hits

    for i, first in aliases:
        results[i] = results[first]
    return results  # type: ignore[return-value]


def _enqueue(groups, model_by_gid, model, req, i) -> None:
    gid = id(model)
    model_by_gid[gid] = model
    group = groups.get((gid, req.temp_k))
    if group is None:
        group = groups[(gid, req.temp_k)] = [[], []]
    group[0].extend(req.voltages)
    group[1].append((i, len(req.voltages)))


__all__ = [
    "ABS_FLOOR_FRACTION",
    "DEFAULT_INITIAL_ANCHORS",
    "DEFAULT_MAX_ROUNDS",
    "DEFAULT_TOLERANCE",
    "QUANTITIES",
    "SURROGATE_SCHEMA_VERSION",
    "SurrogateModel",
    "fit_surrogate",
    "fit_variation_family",
    "model_fingerprint",
    "pchip_eval",
    "pchip_slopes",
]
