"""Circuit elements for the nodal simulator.

Sign convention: :meth:`~repro.spice.netlist.Device.currents` returns the
current flowing *out of each terminal node into the device*.  A resistor
between ``a`` and ``b`` with ``Va > Vb`` therefore reports a positive
current at ``a`` and the negative of it at ``b``.

The MOSFET uses the same alpha-power-law-with-mobility-degradation model
as the analytic delay layer (:class:`repro.tech.ptm.TechnologyCard`), with
a smooth tanh transition between the linear and saturation regions so the
Newton solver converges reliably.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping

from repro.errors import ConfigurationError
from repro.spice.netlist import Device
from repro.tech.ptm import TechnologyCard
from repro.units import thermal_voltage, ROOM_TEMP_K


class Resistor(Device):
    """Linear resistor."""

    def __init__(self, name: str, a: str, b: str, resistance: float):
        if resistance <= 0:
            raise ConfigurationError(f"{name}: resistance must be positive")
        self.name = name
        self.terminals = (a, b)
        self.resistance = resistance

    def currents(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        a, b = self.terminals
        i = (voltages.get(a, 0.0) - voltages.get(b, 0.0)) / self.resistance
        return {a: i, b: -i}

    def stamp(self, x, idx, jac, res) -> None:
        ia, ib = idx
        _stamp_conductance(x, ia, ib, 1.0 / self.resistance, jac, res)


def _stamp_conductance(x, ia, ib, g, jac, res) -> None:
    """Two-terminal conductance stamp: ``i = g * (Va - Vb)`` out of ``a``."""
    i = g * (x[ia] - x[ib])
    res[ia] += i
    res[ib] -= i
    if jac is not None:
        jac[ia, ia] += g
        jac[ib, ib] += g
        jac[ia, ib] -= g
        jac[ib, ia] -= g


class CurrentSource(Device):
    """Constant current source pushing ``current`` from ``a`` to ``b``
    through the device (i.e. it pulls current out of node ``a``)."""

    def __init__(self, name: str, a: str, b: str, current: float):
        self.name = name
        self.terminals = (a, b)
        self.current = current

    def currents(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        a, b = self.terminals
        return {a: self.current, b: -self.current}

    def stamp(self, x, idx, jac, res) -> None:
        ia, ib = idx
        res[ia] += self.current
        res[ib] -= self.current


class VoltageSource(Device):
    """Voltage source implemented as a stiff Norton equivalent.

    Holds node ``pos`` at ``voltage`` above node ``neg`` through a large
    internal conductance.  With microamp-scale circuit currents and the
    default 10 S conductance the voltage error is sub-microvolt, which is
    far below every tolerance in this library.

    ``voltage`` is writable between transient steps, enabling piecewise
    supply ramps (used by discharge experiments).
    """

    def __init__(self, name: str, pos: str, neg: str, voltage: float, conductance: float = 10.0):
        if conductance <= 0:
            raise ConfigurationError(f"{name}: conductance must be positive")
        self.name = name
        self.terminals = (pos, neg)
        self.voltage = voltage
        self.conductance = conductance

    def currents(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        pos, neg = self.terminals
        v = voltages.get(pos, 0.0) - voltages.get(neg, 0.0)
        i = (v - self.voltage) * self.conductance
        return {pos: i, neg: -i}

    def stamp(self, x, idx, jac, res) -> None:
        ipos, ineg = idx
        _stamp_conductance(x, ipos, ineg, self.conductance, jac, res)
        shift = self.voltage * self.conductance
        res[ipos] -= shift
        res[ineg] += shift

    def through(self, voltages: Mapping[str, float]) -> float:
        """Current delivered by the source into ``pos``'s external network."""
        pos, neg = self.terminals
        v = voltages.get(pos, 0.0) - voltages.get(neg, 0.0)
        return (self.voltage - v) * self.conductance


class Switch(Device):
    """Voltage-independent on/off switch (models the enable NMOS foot)."""

    def __init__(self, name: str, a: str, b: str, closed: bool = True, on_resistance: float = 1e3, off_resistance: float = 1e12):
        self.name = name
        self.terminals = (a, b)
        self.closed = closed
        self.on_resistance = on_resistance
        self.off_resistance = off_resistance

    def currents(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        a, b = self.terminals
        r = self.on_resistance if self.closed else self.off_resistance
        i = (voltages.get(a, 0.0) - voltages.get(b, 0.0)) / r
        return {a: i, b: -i}

    def stamp(self, x, idx, jac, res) -> None:
        ia, ib = idx
        r = self.on_resistance if self.closed else self.off_resistance
        _stamp_conductance(x, ia, ib, 1.0 / r, jac, res)


class Capacitor(Device):
    """Capacitor integrated with backward Euler.

    During a transient step the capacitor behaves as a companion current
    source ``I = C (V - V_prev) / dt``; in DC it carries no current.
    """

    def __init__(self, name: str, a: str, b: str, capacitance: float, initial_voltage: float = 0.0):
        if capacitance <= 0:
            raise ConfigurationError(f"{name}: capacitance must be positive")
        self.name = name
        self.terminals = (a, b)
        self.capacitance = capacitance
        self._v_prev = initial_voltage
        self._dt = 0.0

    def reset_state(self, voltages: Mapping[str, float]) -> None:
        a, b = self.terminals
        self._v_prev = voltages.get(a, 0.0) - voltages.get(b, 0.0)
        self._dt = 0.0

    def begin_step(self, dt: float) -> None:
        self._dt = dt

    def commit_step(self, voltages: Mapping[str, float]) -> None:
        a, b = self.terminals
        self._v_prev = voltages.get(a, 0.0) - voltages.get(b, 0.0)

    def currents(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        a, b = self.terminals
        if self._dt <= 0.0:
            return {a: 0.0, b: 0.0}
        v = voltages.get(a, 0.0) - voltages.get(b, 0.0)
        i = self.capacitance * (v - self._v_prev) / self._dt
        return {a: i, b: -i}

    def stamp(self, x, idx, jac, res) -> None:
        if self._dt <= 0.0:
            return
        ia, ib = idx
        geq = self.capacitance / self._dt
        _stamp_conductance(x, ia, ib, geq, jac, res)
        shift = geq * self._v_prev
        res[ia] -= shift
        res[ib] += shift

    @property
    def voltage(self) -> float:
        """Voltage across the capacitor at the last committed step."""
        return self._v_prev


class MOSFET(Device):
    """Alpha-power-law MOSFET with smooth linear/saturation transition.

    Terminals are (drain, gate, source).  ``polarity`` is ``"n"`` or
    ``"p"``.  Gate current is zero; drain current::

        I_sat = (width / tech.c_switch) scaled drive at V_gs overdrive
        I_d   = I_sat * tanh(V_ds / V_knee)

    The drive strength reuses :meth:`TechnologyCard.drive_current` so the
    device-level simulator and the analytic delay model share physics.
    ``width`` is a relative multiplier on the unit device (used for the
    widened divider transistors of Section III-F).
    """

    def __init__(self, name: str, drain: str, gate: str, source: str, tech: TechnologyCard, polarity: str = "n", width: float = 1.0, temp_k: float = ROOM_TEMP_K):
        if polarity not in ("n", "p"):
            raise ConfigurationError(f"{name}: polarity must be 'n' or 'p'")
        if width <= 0:
            raise ConfigurationError(f"{name}: width must be positive")
        self.name = name
        self.terminals = (drain, gate, source)
        self.tech = tech
        self.polarity = polarity
        self.width = width
        self.temp_k = temp_k

    def _drain_current(self, v_gs: float, v_ds: float) -> float:
        """Drain current for NMOS-normalized voltages."""
        v_od = self.tech.soft_overdrive(v_gs, self.temp_k)
        if v_od <= 0:
            return 0.0
        drive = v_od**self.tech.alpha / (1.0 + self.tech.theta * v_od)
        drive *= self.tech.mobility_factor(self.temp_k)
        i_sat = self.width * (self.tech.c_switch / self.tech.k_delay) * drive
        v_knee = max(v_od, 4 * thermal_voltage(self.temp_k))
        return i_sat * math.tanh(max(v_ds, 0.0) / v_knee)

    def _drain_current_derivs(self, v_gs: float, v_ds: float):
        """``(I_d, dI/dv_gs, dI/dv_ds)`` — analytic mirror of
        :meth:`_drain_current` for the solver's stamped Jacobian."""
        tech = self.tech
        v_od, slope = tech.soft_overdrive_slope(v_gs, self.temp_k)
        if v_od <= 0.0:
            return 0.0, 0.0, 0.0
        denom = 1.0 + tech.theta * v_od
        pow_a = v_od**tech.alpha
        scale = self.width * (tech.c_switch / tech.k_delay) * tech.mobility_factor(self.temp_k)
        i_sat = scale * pow_a / denom
        # d(drive)/d(v_od), quotient rule on v_od^alpha / (1 + theta v_od).
        ddrive = (tech.alpha * pow_a / v_od * denom - pow_a * tech.theta) / (denom * denom)
        di_sat = scale * ddrive * slope
        vt4 = 4.0 * thermal_voltage(self.temp_k)
        if v_od > vt4:
            v_knee, dknee = v_od, slope
        else:
            v_knee, dknee = vt4, 0.0
        vds_c = v_ds if v_ds > 0.0 else 0.0
        th = math.tanh(vds_c / v_knee)
        sech2 = 1.0 - th * th
        i = i_sat * th
        d_gs = di_sat * th - i_sat * sech2 * vds_c * dknee / (v_knee * v_knee)
        d_ds = i_sat * sech2 / v_knee
        return i, d_gs, d_ds

    def stamp(self, x, idx, jac, res) -> None:
        """Analytic KCL stamp (gate carries no current).

        Mirrors the source/drain-swap and PMOS sign logic of
        :meth:`currents`; repeated node indices (diode-connected use)
        accumulate naturally because everything is ``+=``.
        """
        di, gi, si = idx
        vd, vg, vs = x[di], x[gi], x[si]
        if self.polarity == "n":
            if vd >= vs:
                i, d1, d2 = self._drain_current_derivs(vg - vs, vd - vs)
                ddd, ddg, dds = d2, d1, -d1 - d2
            else:
                ip, d1, d2 = self._drain_current_derivs(vg - vd, vs - vd)
                i = -ip
                ddd, ddg, dds = d1 + d2, -d1, -d2
        else:
            if vs >= vd:
                ip, d1, d2 = self._drain_current_derivs(vs - vg, vs - vd)
                i = -ip
                ddd, ddg, dds = d2, d1, -d1 - d2
            else:
                i, d1, d2 = self._drain_current_derivs(vd - vg, vd - vs)
                ddd, ddg, dds = d1 + d2, -d1, -d2
        res[di] += i
        res[si] -= i
        if jac is not None:
            jac[di, di] += ddd
            jac[di, gi] += ddg
            jac[di, si] += dds
            jac[si, di] -= ddd
            jac[si, gi] -= ddg
            jac[si, si] -= dds

    def currents(self, voltages: Mapping[str, float]) -> Dict[str, float]:
        d, g, s = self.terminals
        vd = voltages.get(d, 0.0)
        vg = voltages.get(g, 0.0)
        vs = voltages.get(s, 0.0)
        if self.polarity == "n":
            v_gs, v_ds = vg - vs, vd - vs
            sign = 1.0
            # Handle reversed bias symmetrically (source/drain swap).
            if v_ds < 0:
                v_gs, v_ds, sign = vg - vd, vs - vd, -1.0
            i = sign * self._drain_current(v_gs, v_ds)
        else:
            v_gs, v_ds = vs - vg, vs - vd
            sign = 1.0
            if v_ds < 0:
                v_gs, v_ds, sign = vd - vg, vd - vs, -1.0
            i = sign * self._drain_current(v_gs, v_ds)
            i = -i  # PMOS conducts from source into drain node
        # NMOS: positive i flows drain -> source inside the device, so it
        # leaves node d and enters node s.  Accumulate rather than build a
        # dict literal: in diode-connected use the gate shares a node with
        # the drain and must not clobber its current.
        out: Dict[str, float] = {}
        for node, contribution in ((d, i), (g, 0.0), (s, -i)):
            out[node] = out.get(node, 0.0) + contribution
        return out


class DiodeConnectedMOSFET(MOSFET):
    """A MOSFET with gate tied to drain — one rung of the paper's
    transistor voltage divider (Section III-F).

    For PMOS rungs the gate ties to the *drain* (lower node), making
    each device a two-terminal diode-ish element whose V_gs equals its
    V_sd; the bulk-to-source tie the paper describes is implicit because
    the model has no body effect.
    """

    def __init__(self, name: str, high: str, low: str, tech: TechnologyCard, polarity: str = "p", width: float = 1.0, temp_k: float = ROOM_TEMP_K):
        if polarity == "p":
            # source = high node, gate = drain = low node
            super().__init__(name, low, low, high, tech, "p", width, temp_k)
        else:
            # NMOS diode: drain = gate = high node, source = low node
            super().__init__(name, high, high, low, tech, "n", width, temp_k)
        self.high = high
        self.low = low
