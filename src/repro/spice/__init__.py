"""A small nodal circuit simulator — the library's LTspice stand-in.

The paper explores Failure Sentinels in LTspice with PTM device cards.
This package provides the pieces of that flow the reproduction needs:

* :mod:`repro.spice.netlist` — circuits, nodes, device registration;
* :mod:`repro.spice.devices` — resistors, capacitors, sources, switches,
  and an alpha-power-law MOSFET driven by a :class:`~repro.tech.ptm.TechnologyCard`;
* :mod:`repro.spice.solver` — Newton DC operating point and backward-Euler
  transient analysis;
* :mod:`repro.spice.waveform` — waveform containers with the measurements
  the experiments need (edge counting, frequency, averages).

It is used to simulate the transistor-level parts of Failure Sentinels the
FPGA cannot express: the diode-connected PMOS voltage divider (including
its loading droop), device-level ring oscillators, and the level shifter.
"""

from repro.spice.netlist import Circuit, GROUND
from repro.spice.devices import (
    Resistor,
    Capacitor,
    CurrentSource,
    VoltageSource,
    Switch,
    MOSFET,
    DiodeConnectedMOSFET,
)
from repro.spice.solver import DCSolution, dc_operating_point, transient
from repro.spice.waveform import Waveform, TransientResult

__all__ = [
    "Circuit",
    "GROUND",
    "Resistor",
    "Capacitor",
    "CurrentSource",
    "VoltageSource",
    "Switch",
    "MOSFET",
    "DiodeConnectedMOSFET",
    "DCSolution",
    "dc_operating_point",
    "transient",
    "Waveform",
    "TransientResult",
]
