"""A small nodal circuit simulator — the library's LTspice stand-in.

The paper explores Failure Sentinels in LTspice with PTM device cards.
This package provides the pieces of that flow the reproduction needs:

* :mod:`repro.spice.netlist` — circuits, nodes, device registration;
* :mod:`repro.spice.devices` — resistors, capacitors, sources, switches,
  and an alpha-power-law MOSFET driven by a :class:`~repro.tech.ptm.TechnologyCard`;
* :mod:`repro.spice.solver` — Newton DC operating point and backward-Euler
  transient analysis;
* :mod:`repro.spice.waveform` — waveform containers with the measurements
  the experiments need (edge counting, frequency, averages);
* :mod:`repro.spice.charlib` — batch characterization sweeps behind a
  persistent on-disk cache (the ``characterize_many`` front door with
  ``engine="exact"|"surrogate"|"auto"`` dispatch);
* :mod:`repro.spice.surrogate` — certified monotone-PCHIP interpolants
  fitted from coarse anchor grids of exact solves (the
  ``engine="surrogate"`` backend).

It is used to simulate the transistor-level parts of Failure Sentinels the
FPGA cannot express: the diode-connected PMOS voltage divider (including
its loading droop), device-level ring oscillators, and the level shifter.
"""

from repro.spice.netlist import Circuit, GROUND
from repro.spice.devices import (
    Resistor,
    Capacitor,
    CurrentSource,
    VoltageSource,
    Switch,
    MOSFET,
    DiodeConnectedMOSFET,
)
from repro.spice.solver import DCSolution, dc_operating_point, transient
from repro.spice.waveform import Waveform, TransientResult

#: Names forwarded lazily from :mod:`repro.spice.charlib` (PEP 562):
#: charlib builds netlists via :mod:`repro.analog`, which imports back
#: into this package's submodules, so an eager import here would be
#: circular.
_CHARLIB_EXPORTS = (
    "CharacterizationCache",
    "CHARLIB_RTOL",
    "CHAR_ENGINES",
    "DividerSweep",
    "PeriodProbe",
    "RingSweep",
    "SweepResult",
    "characterize_many",
    "default_cache",
)

#: Names forwarded lazily from :mod:`repro.spice.surrogate` (same
#: circularity reason — surrogate imports charlib).
_SURROGATE_EXPORTS = (
    "DEFAULT_TOLERANCE",
    "SurrogateModel",
    "fit_surrogate",
    "fit_variation_family",
)


def __getattr__(name):
    if name == "charlib" or name in _CHARLIB_EXPORTS:
        import repro.spice.charlib as charlib

        return charlib if name == "charlib" else getattr(charlib, name)
    if name == "surrogate" or name in _SURROGATE_EXPORTS:
        import repro.spice.surrogate as surrogate

        return surrogate if name == "surrogate" else getattr(surrogate, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Circuit",
    "GROUND",
    "Resistor",
    "Capacitor",
    "CurrentSource",
    "VoltageSource",
    "Switch",
    "MOSFET",
    "DiodeConnectedMOSFET",
    "DCSolution",
    "dc_operating_point",
    "transient",
    "Waveform",
    "TransientResult",
    *_CHARLIB_EXPORTS,
    *_SURROGATE_EXPORTS,
]
