"""A small blocking client for the job service (tests, examples, CI).

Pure stdlib (``http.client``), one connection per call::

    from repro.serve.client import ServeClient

    client = ServeClient(port=8733)
    job = client.submit("fleet", {"fleet": spec.to_dict(), "parallel": 4})
    for event in client.stream(job["id"]):
        ...                       # incremental DeviceResults, live
    report = client.result(job["id"])   # the final FleetReport payload

``stream`` yields decoded NDJSON event dicts until the job's terminal
``end`` event (or the server closes the stream).  ``result`` polls the
job to a terminal state and returns the final result payload, raising
:class:`ServeError` for failed/cancelled jobs — it does not depend on
the stream, so it works even when a slow consumer's buffer dropped the
``result`` event.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.serve.jobs import TERMINAL_STATES

__all__ = ["ServeClient", "ServeError"]


class ServeError(ReproError):
    """The service answered with an error (or did not answer at all)."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class ServeClient:
    """Blocking helpers over the serve HTTP API."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8733, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Tuple[int, Dict]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = headers = None
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers = {"Content-Type": "application/json"}
            connection.request(method, path, body=body, headers=headers or {})
            response = connection.getresponse()
            data = response.read()
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(f"{method} {path} failed: {exc}")
        finally:
            connection.close()
        try:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        except ValueError:
            raise ServeError(f"{method} {path}: non-JSON response", response.status)
        return response.status, decoded

    def _expect(self, method: str, path: str, payload=None, ok=(200,)) -> Dict:
        status, decoded = self._request(method, path, payload)
        if status not in ok:
            raise ServeError(
                f"{method} {path} -> {status}: {decoded.get('error', decoded)}",
                status,
            )
        return decoded

    # ------------------------------------------------------------------
    def health(self) -> Dict:
        return self._expect("GET", "/healthz")

    def metrics(self) -> Dict:
        return self._expect("GET", "/metrics")

    def submit(self, kind: str, request: Dict) -> Dict:
        """Submit a job; returns its status dict (``{"id": ..., ...}``)."""
        decoded = self._expect(
            "POST", "/jobs", {"type": kind, "request": request}, ok=(202,)
        )
        return decoded["job"]

    def jobs(self) -> List[Dict]:
        return self._expect("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict:
        return self._expect("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict:
        return self._expect("DELETE", f"/jobs/{job_id}")

    # ------------------------------------------------------------------
    def stream(self, job_id: str, sse: bool = False) -> Iterator[Dict]:
        """Yield the job's events (replay + live) until its ``end``.

        NDJSON mode yields every event dict.  SSE mode yields the
        decoded ``data:`` payloads (identical dicts, different framing).
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        path = f"/jobs/{job_id}/stream" + ("?sse=1" if sse else "")
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            if response.status != 200:
                detail = response.read().decode("utf-8", "replace").strip()
                raise ServeError(
                    f"GET {path} -> {response.status}: {detail}", response.status
                )
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                if sse:
                    if not line.startswith(b"data:"):
                        continue
                    line = line[len(b"data:") :].strip()
                event = json.loads(line.decode("utf-8"))
                yield event
                if event.get("event") == "end":
                    return
        finally:
            connection.close()

    def wait(self, job_id: str, timeout: float = 300.0, poll: float = 0.05) -> Dict:
        """Poll until the job reaches a terminal state; returns its status."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {job['state']} after {timeout:.0f}s"
                )
            time.sleep(poll)

    def result(self, job_id: str, timeout: float = 300.0) -> Dict:
        """Block until done and return the final result payload."""
        job = self.wait(job_id, timeout=timeout)
        if job["state"] != "done":
            raise ServeError(
                f"job {job_id} ended {job['state']}: {job.get('error') or ''}".strip()
            )
        return self._expect("GET", f"/jobs/{job_id}/result")["result"]
