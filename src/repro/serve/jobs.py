"""Job queue, state machine, and worker pool for the simulation service.

A :class:`JobManager` owns everything long-lived in the service:

* a **bounded FIFO queue** — submissions past ``queue_depth`` raise
  :class:`QueueFullError` (the HTTP layer maps it to 503) instead of
  growing without bound;
* a **worker-thread pool** draining that queue.  Workers are threads,
  not processes: each handler fans its heavy compute out through
  :func:`repro.exec.run_tasks`, so the threads spend their time waiting
  on process pools and the GIL is irrelevant;
* **process-lifetime warm caches** — one
  :class:`~repro.fleet.cache.CalibrationCache` and one
  :class:`~repro.spice.charlib.CharacterizationCache` shared by every
  job, so the second identical characterization-backed request is a
  cache hit instead of a SPICE re-solve;
* the **job registry** with full event history per job, replayed to
  late stream subscribers.

Job states move ``queued -> running -> done | failed | cancelled``
(queued jobs may go straight to ``cancelled``).  Cancellation is
cooperative but prompt: handlers run their fan-outs in bounded *waves*
through :meth:`JobContext.wave_run`, which checks the cancel flag
between waves and inside every ``on_result`` callback, raising
:class:`JobCancelled`.  Each wave's process pool is joined before the
next starts, so a cancelled job leaves no orphan worker processes
behind.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.exec import run_tasks
from repro.fleet.cache import CalibrationCache
from repro.obs import OBS
from repro.spice.charlib import CharacterizationCache
from repro.serve.streams import DEFAULT_BUFFER_LIMIT, Subscriber

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobCancelled",
    "JobContext",
    "JobManager",
    "QueueFullError",
    "UnknownJobError",
]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Items per fan-out wave, as a multiple of the job's worker count.
#: Bounds cancellation latency (one wave) without starving the process
#: pool between waves.
WAVE_FACTOR = 4


class JobCancelled(ReproError):
    """Raised inside a handler when its job's cancel flag is set."""


class QueueFullError(ReproError):
    """The bounded job queue is at capacity; retry later (HTTP 503)."""


class UnknownJobError(ReproError):
    """No job with the requested id exists (HTTP 404)."""


class Job:
    """One submitted request and everything the service knows about it."""

    def __init__(self, job_id: str, kind: str, request: Dict):
        self.job_id = job_id
        self.kind = kind
        self.request = request
        self.state = "queued"
        self.error: Optional[str] = None
        self.result: Optional[Dict] = None
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        # Monotonic marks for duration math.  ``created``/``started``/
        # ``finished`` stay wall-clock for display, but ``elapsed`` must
        # not go negative (or jump) when NTP steps the system clock
        # mid-job, so it is computed from perf_counter exclusively.
        self._started_pc: Optional[float] = None
        self._finished_pc: Optional[float] = None
        self.cancel_event = threading.Event()
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._events: List[Dict] = []
        self._subscribers: List[Subscriber] = []

    # ------------------------------------------------------------------
    def publish(self, event: Dict) -> Dict:
        """Stamp, record, and fan one event out to every subscriber.

        History append + subscriber pushes happen under the job lock, so
        a subscriber attached via :meth:`subscribe` sees every event
        exactly once: either in its replay snapshot or live, never both,
        never neither.
        """
        with self._lock:
            event = dict(event)
            event["seq"] = next(self._seq)
            event["job"] = self.job_id
            self._events.append(event)
            for subscriber in self._subscribers:
                subscriber.push(event)
        return event

    def subscribe(
        self, limit: int = DEFAULT_BUFFER_LIMIT, notify=None
    ) -> Tuple[Subscriber, List[Dict]]:
        """Attach a new subscriber; returns it plus the replay history."""
        subscriber = Subscriber(limit=limit, notify=notify)
        with self._lock:
            replay = list(self._events)
            self._subscribers.append(subscriber)
        return subscriber, replay

    def unsubscribe(self, subscriber: Subscriber) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

    def events(self) -> List[Dict]:
        """A snapshot of the full event history (tests, /result)."""
        with self._lock:
            return list(self._events)

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> Optional[float]:
        """Run time in seconds (``None`` until the job has started).

        Monotonic: measured from ``perf_counter`` marks, never from the
        wall-clock ``started``/``finished`` fields, so a system-clock
        step during the job cannot produce a negative or wild value.
        """
        if self._started_pc is None:
            return None
        end = self._finished_pc if self._finished_pc is not None else time.perf_counter()
        return end - self._started_pc

    def to_dict(self) -> Dict:
        """JSON status payload for ``GET /jobs/<id>``."""
        return {
            "id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "elapsed": self.elapsed,
            "error": self.error,
            "events": len(self._events),
            "has_result": self.result is not None,
        }


class JobContext:
    """What a handler gets: its job, the shared caches, and the plumbing
    for streaming results and honoring cancellation."""

    def __init__(self, job: Job, manager: "JobManager"):
        self.job = job
        self.manager = manager

    # ------------------------------------------------------------------
    def emit(self, event: str, **fields) -> None:
        """Stream one incremental-result event to subscribers."""
        self.job.publish({"event": event, **fields})

    def emit_metrics(self) -> None:
        """Stream a live obs counter snapshot (when metrics are armed)."""
        if OBS.metrics.enabled:
            snap = OBS.metrics.snapshot()
            self.emit("metrics", counters=snap["counters"], ops=snap["ops"])

    def check_cancelled(self) -> None:
        """Raise :class:`JobCancelled` if this job was cancelled."""
        if self.job.cancel_event.is_set():
            raise JobCancelled(f"job {self.job.job_id} cancelled")

    # ------------------------------------------------------------------
    def wave_run(
        self,
        fn: Callable,
        items: Sequence,
        *,
        parallel: Optional[int] = None,
        chunked: bool = False,
        chunk="even",
        on_item: Optional[Callable[[int, object], None]] = None,
        wave: Optional[int] = None,
        label: Optional[str] = None,
    ) -> List:
        """A cancellable :func:`repro.exec.run_tasks` — the handler fan-out.

        Slices ``items`` into waves of ``wave`` (default ``max(parallel,
        1) * WAVE_FACTOR``) and runs each wave through ``run_tasks``.
        The cancel flag is checked before every wave and inside every
        ``on_result`` callback; each wave's process pool is joined
        before the next wave starts, so cancellation never strands
        worker processes.  ``on_item(index, outcome)`` fires in item
        order with *global* indices as stitched results arrive — this is
        where handlers stream incremental results from.

        Results are identical to one big ``run_tasks`` call (the
        backbone's chunking-invariance contract), so serve-path numbers
        match the direct ``repro.api`` call byte for byte.
        """
        items = list(items)
        if wave is None:
            wave = max(1, (parallel or 1)) * WAVE_FACTOR
        if wave < 1:
            raise ConfigurationError(f"wave must be >= 1, got {wave}")
        results: List = []

        def _on_result(offset_base: int):
            def _cb(index: int, outcome) -> None:
                self.check_cancelled()
                if on_item is not None:
                    on_item(offset_base + index, outcome)
            return _cb

        for start in range(0, len(items), wave):
            self.check_cancelled()
            results.extend(
                run_tasks(
                    fn,
                    items[start : start + wave],
                    parallel=parallel,
                    chunked=chunked,
                    chunk=chunk,
                    label=label,
                    on_result=_on_result(start),
                )
            )
            self.emit_metrics()
        self.check_cancelled()
        return results


class JobManager:
    """The service core: queue, workers, registry, shared caches."""

    def __init__(
        self,
        handlers: Optional[Dict[str, Callable]] = None,
        workers: int = 2,
        queue_depth: int = 16,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
        calibration_cache: Optional[CalibrationCache] = None,
        characterization_cache: Optional[CharacterizationCache] = None,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if queue_depth < 1:
            raise ConfigurationError(f"queue_depth must be >= 1, got {queue_depth}")
        if handlers is None:
            # Late import: handlers pull in the fleet/dse stacks, which
            # a bare ``import repro.serve.jobs`` should not pay for.
            from repro.serve.handlers import HANDLERS

            handlers = HANDLERS
        self.handlers = dict(handlers)
        self.workers = workers
        self.queue_depth = queue_depth
        self.buffer_limit = buffer_limit
        self.calibration_cache = (
            calibration_cache if calibration_cache is not None else CalibrationCache()
        )
        self.characterization_cache = (
            characterization_cache
            if characterization_cache is not None
            else CharacterizationCache()
        )
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._jobs: Dict[str, Job] = {}
        self._threads: List[threading.Thread] = []
        self._counter = itertools.count(1)
        self._shutdown = False

    # ------------------------------------------------------------------
    def start(self) -> "JobManager":
        """Spin up the worker pool (idempotent)."""
        with self._cond:
            if self._threads:
                return self
            self._shutdown = False
            for i in range(self.workers):
                thread = threading.Thread(
                    target=self._worker, name=f"serve-worker-{i}", daemon=True
                )
                thread.start()
                self._threads.append(thread)
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Cancel everything in flight and join the worker pool."""
        with self._cond:
            self._shutdown = True
            for job in self._jobs.values():
                if job.state in ("queued", "running"):
                    job.cancel_event.set()
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    # ------------------------------------------------------------------
    def submit(self, kind: str, request: Dict) -> Job:
        """Enqueue one job; raises when the kind is unknown or the
        bounded queue is full."""
        if kind not in self.handlers:
            raise ConfigurationError(
                f"unknown job type {kind!r}; choose from {sorted(self.handlers)}"
            )
        if not isinstance(request, dict):
            raise ConfigurationError("job request must be a JSON object")
        with self._cond:
            if self._shutdown:
                raise QueueFullError("the service is shutting down")
            if len(self._queue) >= self.queue_depth:
                raise QueueFullError(
                    f"job queue full ({self.queue_depth} queued); retry later"
                )
            job = Job(f"j{next(self._counter):06d}", kind, request)
            self._jobs[job.job_id] = job
            # Publish before a worker can claim the job, so the event
            # history always starts with the queued transition.
            job.publish({"event": "state", "state": "queued", "kind": kind})
            self._queue.append(job)
            self._cond.notify()
        OBS.metrics.incr("serve.jobs_submitted")
        return job

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"no such job {job_id!r}")
        return job

    def jobs(self) -> List[Job]:
        """All known jobs, in submission order."""
        return list(self._jobs.values())

    def queue_length(self) -> int:
        with self._cond:
            return len(self._queue)

    def cancel(self, job_id: str) -> Job:
        """Cancel a job.  Queued jobs terminate immediately; running
        jobs stop at the next wave boundary / stream callback; terminal
        jobs are left untouched."""
        job = self.get(job_id)
        finish = False
        with self._cond:
            job.cancel_event.set()
            if job.state == "queued":
                try:
                    self._queue.remove(job)
                except ValueError:
                    pass  # a worker already claimed it
                else:
                    finish = True
        if finish:
            self._finish(job, "cancelled")
        OBS.metrics.incr("serve.jobs_cancelled")
        return job

    def subscribe(
        self, job_id: str, notify=None, limit: Optional[int] = None
    ) -> Tuple[Job, Subscriber, List[Dict]]:
        job = self.get(job_id)
        subscriber, replay = job.subscribe(
            limit=limit if limit is not None else self.buffer_limit, notify=notify
        )
        return job, subscriber, replay

    # ------------------------------------------------------------------
    def _finish(self, job: Job, state: str) -> None:
        """Terminal transition + the stream's closing ``end`` event."""
        job.state = state
        job.finished = time.time()
        job._finished_pc = time.perf_counter()
        job.publish({"event": "end", "state": state})
        OBS.metrics.incr(f"serve.jobs_{state}")

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._shutdown:
                    self._cond.wait()
                if self._shutdown:
                    return
                job = self._queue.popleft()
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        if job.cancel_event.is_set():
            self._finish(job, "cancelled")
            return
        job.state = "running"
        job.started = time.time()
        job._started_pc = time.perf_counter()
        job.publish({"event": "state", "state": "running"})
        context = JobContext(job, self)
        with OBS.tracer.span("serve.job", job=job.job_id, kind=job.kind):
            try:
                result = self.handlers[job.kind](context, job.request)
            except JobCancelled:
                self._finish(job, "cancelled")
            except Exception as exc:  # noqa: BLE001 - jobs must not kill workers
                job.error = f"{type(exc).__name__}: {exc}"
                job.publish({"event": "error", "error": job.error})
                self._finish(job, "failed")
            else:
                job.result = result
                job.publish({"event": "result", "result": result})
                self._finish(job, "done")
        OBS.metrics.observe("serve.job_seconds", job.elapsed or 0.0)
