"""The HTTP face of the job service: routing, streaming, lifecycle.

A deliberately small HTTP/1.1 server on raw ``asyncio`` streams — no
frameworks, no new dependencies.  One accept loop, one coroutine per
connection; compute never runs on the event loop (jobs execute on the
:class:`~repro.serve.jobs.JobManager` worker threads and fan out through
:mod:`repro.exec` process pools), so the loop only ever parses small
requests and shovels bytes.

Routes (see ``docs/serving.md`` for the full API):

========  =========================  =======================================
 method    path                       behaviour
========  =========================  =======================================
 GET       /healthz                   liveness + version + job counts
 GET       /metrics                   obs counter snapshot (when armed)
 POST      /jobs                      submit ``{"type": t, "request": {...}}``
 GET       /jobs                      list all jobs
 GET       /jobs/<id>                 one job's status
 GET       /jobs/<id>/result          final result payload (done jobs)
 GET       /jobs/<id>/stream          NDJSON (default) or SSE event stream
 DELETE    /jobs/<id>                 cancel
========  =========================  =======================================

Streaming responses replay the job's full event history, then follow
live events until the terminal ``end`` event.  The bridge from worker
threads onto the event loop is ``loop.call_soon_threadsafe`` waking an
``asyncio.Event`` per subscriber; the subscriber's bounded buffer (see
:mod:`repro.serve.streams`) is what keeps a slow consumer from ever
back-pressuring the compute path.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.errors import ConfigurationError
from repro.obs import OBS
from repro.serve.jobs import (
    JobManager,
    QueueFullError,
    TERMINAL_STATES,
    UnknownJobError,
)
from repro.serve.streams import encode_ndjson, encode_sse

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "ReproServer", "ServerThread"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8733

#: Largest accepted request body (a fleet spec for ~100k devices).
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response(status: int, payload: Dict, extra_headers: Dict = None) -> bytes:
    body = (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")
    headers = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    if extra_headers:
        headers.update(extra_headers)
    head = f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n" + "".join(
        f"{k}: {v}\r\n" for k, v in headers.items()
    )
    return head.encode("ascii") + b"\r\n" + body


class _HttpError(Exception):
    """Routed straight to a JSON error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ReproServer:
    """The long-lived simulation service.

    ``port=0`` binds an ephemeral port (tests); the bound port is
    available as :attr:`port` once the server is up.  ``manager`` may be
    injected to share caches or stub handlers; otherwise one is built
    from ``workers``/``queue_depth``/``buffer_limit``.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        workers: int = 2,
        queue_depth: int = 16,
        buffer_limit: int = 256,
        manager: Optional[JobManager] = None,
    ):
        self.host = host
        self.port = port
        self.manager = manager or JobManager(
            workers=workers, queue_depth=queue_depth, buffer_limit=buffer_limit
        )
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def serve(self, on_ready=None) -> None:
        """Run until :meth:`stop` is called (the coroutine entry point)."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.manager.start()
        server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        if on_ready is not None:
            on_ready(self)
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            self._ready.clear()
            self.manager.stop()

    def run(self, on_ready=None) -> None:
        """Blocking entry point (the CLI); Ctrl-C stops cleanly."""
        try:
            asyncio.run(self.serve(on_ready=on_ready))
        except KeyboardInterrupt:
            pass

    def stop(self) -> None:
        """Stop the accept loop (threadsafe)."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # One connection
    # ------------------------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        try:
            method, path, headers, body = await self._read_request(reader)
            await self._route(method, path, headers, body, writer)
        except _HttpError as exc:
            writer.write(_response(exc.status, {"error": str(exc)}))
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass  # client went away; nothing to answer
        except Exception as exc:  # noqa: BLE001 - a connection must not kill the loop
            try:
                writer.write(
                    _response(500, {"error": f"{type(exc).__name__}: {exc}"})
                )
            except Exception:  # noqa: BLE001
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001
                pass

    async def _read_request(self, reader) -> Tuple[str, str, Dict[str, str], bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise _HttpError(400, "empty request")
        try:
            method, path, _version = request_line.decode("ascii").split()
        except ValueError:
            raise _HttpError(400, "malformed request line")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > MAX_BODY_BYTES:
            raise _HttpError(400, f"request body over {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method, path, headers, body, writer) -> None:
        split = urlsplit(path)
        query = parse_qs(split.query)
        parts = [p for p in split.path.split("/") if p]
        if parts == ["healthz"] and method == "GET":
            return self._send(writer, 200, self._health())
        if parts == ["metrics"] and method == "GET":
            return self._send(writer, 200, self._metrics())
        if parts == ["jobs"]:
            if method == "POST":
                return self._send(writer, *self._submit(body))
            if method == "GET":
                return self._send(
                    writer, 200, {"jobs": [j.to_dict() for j in self.manager.jobs()]}
                )
            raise _HttpError(405, f"{method} not allowed on /jobs")
        if len(parts) >= 2 and parts[0] == "jobs":
            job_id = parts[1]
            try:
                job = self.manager.get(job_id)
            except UnknownJobError as exc:
                raise _HttpError(404, str(exc))
            if len(parts) == 2:
                if method == "GET":
                    return self._send(writer, 200, job.to_dict())
                if method == "DELETE":
                    return self._send(
                        writer, 200, self.manager.cancel(job_id).to_dict()
                    )
                raise _HttpError(405, f"{method} not allowed on /jobs/<id>")
            if parts[2] == "result" and method == "GET":
                return self._send(writer, *self._result(job))
            if parts[2] == "stream" and method == "GET":
                sse = "sse" in query or "text/event-stream" in headers.get("accept", "")
                return await self._stream(job_id, writer, sse=sse)
            raise _HttpError(404, f"unknown endpoint /jobs/<id>/{parts[2]}")
        raise _HttpError(404, f"unknown path {split.path!r}")

    def _send(self, writer, status: int, payload: Dict, headers: Dict = None) -> None:
        writer.write(_response(status, payload, headers))

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _health(self) -> Dict:
        states: Dict[str, int] = {}
        for job in self.manager.jobs():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "ok": True,
            "version": __version__,
            "queue_depth": self.manager.queue_depth,
            "queued": self.manager.queue_length(),
            "workers": self.manager.workers,
            "jobs": states,
        }

    def _metrics(self) -> Dict:
        if not OBS.metrics.enabled:
            return {"enabled": False}
        snap = OBS.metrics.snapshot()
        return {"enabled": True, "counters": snap["counters"], "ops": snap["ops"]}

    def _submit(self, body: bytes) -> Tuple[int, Dict]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "request body must be JSON")
        if not isinstance(payload, dict) or "type" not in payload:
            raise _HttpError(400, 'submit payload must be {"type": ..., "request": {...}}')
        try:
            job = self.manager.submit(payload["type"], payload.get("request", {}))
        except QueueFullError as exc:
            return 503, {"error": str(exc), "retry": True}
        except ConfigurationError as exc:
            raise _HttpError(400, str(exc))
        return 202, {"job": job.to_dict()}

    def _result(self, job) -> Tuple[int, Dict]:
        if job.state == "done":
            return 200, {"job": job.to_dict(), "result": job.result}
        if job.state in TERMINAL_STATES:
            return 409, {"job": job.to_dict(), "error": job.error or job.state}
        return 409, {"job": job.to_dict(), "error": f"job is {job.state}"}

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    async def _stream(self, job_id: str, writer, sse: bool) -> None:
        loop = asyncio.get_running_loop()
        wake = asyncio.Event()
        job, subscriber, replay = self.manager.subscribe(
            job_id, notify=lambda: loop.call_soon_threadsafe(wake.set)
        )
        encode = encode_sse if sse else encode_ndjson
        content_type = "text/event-stream" if sse else "application/x-ndjson"
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                f"Content-Type: {content_type}\r\n"
                "Cache-Control: no-store\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
        )
        ended = False
        try:
            for event in replay:
                writer.write(encode(event))
                ended = ended or event.get("event") == "end"
            await writer.drain()
            while not ended:
                batch = subscriber.drain()
                if not batch:
                    # The 0.5 s timeout is a liveness backstop (e.g. the
                    # manager shutting down mid-stream), not the normal
                    # wake path.
                    try:
                        await asyncio.wait_for(wake.wait(), timeout=0.5)
                    except asyncio.TimeoutError:
                        if job.state in TERMINAL_STATES and not len(subscriber):
                            break
                    wake.clear()
                    continue
                for event in batch:
                    writer.write(encode(event))
                    ended = ended or event.get("event") == "end"
                # Back-pressure lands HERE, on this subscriber's socket
                # only — the job keeps publishing into the bounded
                # buffer (dropping oldest) while we wait.
                await writer.drain()
        finally:
            job.unsubscribe(subscriber)


class ServerThread:
    """A live server on a background thread (tests, benchmarks).

    ::

        with ServerThread(workers=1) as server:
            client = ServeClient(port=server.port)
            ...

    Binds an ephemeral port by default; ``__enter__`` returns the
    running :class:`ReproServer` with :attr:`~ReproServer.port` bound.
    """

    def __init__(self, **kwargs):
        kwargs.setdefault("port", 0)
        self.server = ReproServer(**kwargs)
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> ReproServer:
        self._thread = threading.Thread(
            target=self.server.run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self.server._ready.wait(timeout=10.0):
            raise RuntimeError("serve thread failed to come up within 10 s")
        return self.server

    def __exit__(self, *exc_info) -> None:
        self.server.stop()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
