"""``repro.serve`` — the long-lived simulation service.

Failure-Sentinels simulations as traffic: a stdlib-only (``asyncio`` +
raw sockets) HTTP job service that accepts fleet / DSE / experiment /
characterization requests as the library's own ``to_dict`` JSON
payloads, queues them through a bounded FIFO onto a worker pool, and
streams incremental results — per-device :class:`DeviceResult`\\ s,
generation-by-generation Pareto fronts, live obs counter snapshots — as
NDJSON or SSE while the job runs.  Calibration and characterization
caches are process-lifetime and shared across requests, so a warm
server answers repeat workloads without re-paying SPICE.

Layering (modeled on a server/streaming/exporter split):

* :mod:`repro.serve.app` — HTTP parsing, routing, the stream writer;
* :mod:`repro.serve.jobs` — queue, job state machine, worker pool,
  cancellation, the shared caches;
* :mod:`repro.serve.streams` — NDJSON/SSE encoders and the bounded
  per-subscriber buffers (drop-oldest back-pressure);
* :mod:`repro.serve.handlers` — per-job-type adapters over
  :mod:`repro.api`;
* :mod:`repro.serve.client` — blocking submit/stream/result/cancel
  helpers used by tests, benchmarks, and examples.

Start it with ``python -m repro serve --port 8733 --workers 2``; the
full HTTP API is documented in ``docs/serving.md``.
"""

from repro.serve.app import DEFAULT_HOST, DEFAULT_PORT, ReproServer, ServerThread
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobCancelled,
    JobContext,
    JobManager,
    QueueFullError,
    UnknownJobError,
)
from repro.serve.streams import Subscriber, encode_ndjson, encode_sse

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "JOB_STATES",
    "Job",
    "JobCancelled",
    "JobContext",
    "JobManager",
    "QueueFullError",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "ServerThread",
    "Subscriber",
    "TERMINAL_STATES",
    "UnknownJobError",
    "encode_ndjson",
    "encode_sse",
]
