"""Event encoding and per-subscriber buffering for the job service.

Two wire encodings of the same event dicts:

* **NDJSON** (the default, ``application/x-ndjson``) — one compact JSON
  object per line, trivially parsed by ``readline()`` loops;
* **SSE** (``text/event-stream``, selected via ``Accept``) — the
  browser-native ``event:``/``data:`` framing, same payloads.

:class:`Subscriber` is the back-pressure boundary between the compute
path and a stream consumer.  Publishing is a bounded-deque append under
a lock — it never blocks, whatever the consumer is doing.  When the
buffer is full the *oldest* event is dropped and counted; the next
:meth:`~Subscriber.drain` leads with a ``{"event": "dropped",
"count": n}`` marker so the consumer knows its view has a gap.  A slow
reader therefore costs itself events, never the job's wall time.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Callable, Dict, List, Optional

__all__ = [
    "DEFAULT_BUFFER_LIMIT",
    "Subscriber",
    "dropped_marker",
    "encode_ndjson",
    "encode_sse",
]

#: Per-subscriber buffer bound (events) before drop-oldest kicks in.
DEFAULT_BUFFER_LIMIT = 256


def encode_ndjson(event: Dict) -> bytes:
    """One event as a compact JSON line (``application/x-ndjson``)."""
    return (json.dumps(event, separators=(",", ":")) + "\n").encode("utf-8")


def encode_sse(event: Dict) -> bytes:
    """One event as a Server-Sent-Events frame (``text/event-stream``)."""
    name = event.get("event", "message")
    data = json.dumps(event, separators=(",", ":"))
    return f"event: {name}\ndata: {data}\n\n".encode("utf-8")


def dropped_marker(count: int) -> Dict:
    """The gap marker a drain leads with after drop-oldest fired."""
    return {"event": "dropped", "count": count}


class Subscriber:
    """One stream consumer's bounded event buffer.

    ``notify`` (optional) is called after every :meth:`push`, outside
    the buffer lock — the HTTP layer points it at
    ``loop.call_soon_threadsafe`` to wake the writer coroutine.  It must
    be cheap and must not raise.
    """

    def __init__(
        self,
        limit: int = DEFAULT_BUFFER_LIMIT,
        notify: Optional[Callable[[], None]] = None,
    ):
        if limit < 1:
            raise ValueError(f"subscriber buffer limit must be >= 1, got {limit}")
        self.limit = limit
        self.notify = notify
        self._lock = threading.Lock()
        self._events: deque = deque()
        self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        """Events lost to drop-oldest since the last drain."""
        with self._lock:
            return self._dropped

    def push(self, event: Dict) -> None:
        """Append one event; full buffers drop their oldest entry.

        Never blocks — this runs on the job worker thread, and a stalled
        consumer must not stall the compute path.
        """
        with self._lock:
            if len(self._events) >= self.limit:
                self._events.popleft()
                self._dropped += 1
            self._events.append(event)
        if self.notify is not None:
            self.notify()

    def drain(self) -> List[Dict]:
        """Take everything buffered, oldest first.

        If events were dropped since the last drain, the returned list
        leads with a :func:`dropped_marker` so the consumer sees the gap
        exactly where it happened.
        """
        with self._lock:
            events = list(self._events)
            self._events.clear()
            dropped, self._dropped = self._dropped, 0
        if dropped:
            return [dropped_marker(dropped)] + events
        return events
