"""Per-job-type adapters: JSON request in, streamed events + JSON result out.

Each handler is a plain function ``handler(context, request) -> dict``
bridging one job type onto the existing :mod:`repro.api` surface.  The
wire format is the library's own ``to_dict``/``from_dict`` payloads
(api v1.1.0) — nothing is re-modelled for HTTP, so a streamed result is
*byte-identical JSON* to what the direct in-process call produces
(asserted in ``tests/serve/``).

Job types:

``fleet``
    ``{"fleet": FleetSpec.to_dict(), "parallel": k, "eval_engine": e}``
    Streams one ``device`` event per :class:`DeviceResult` (in device
    order); final result is ``FleetReport.to_dict()``.  Calibration
    goes through the manager's process-lifetime shared cache.  With
    ``"stream": true`` (plus optional ``shard_size`` / ``sample`` /
    ``sample_seed`` / ``capacity``) the fleet runs through the
    constant-memory sharded path instead: one ``sketch`` snapshot
    event per shard (mergeable :class:`~repro.fleet.stream.FleetSketch`
    wire form), final result ``FleetSketchReport.to_dict()``, and
    cancellation lands at shard granularity.  ``"record": true`` (both
    modes) additionally captures the run as a :mod:`repro.trace`
    recording, streamed as one ``trace`` event.
``dse``
    ``{"tech": "90nm", "population_size": p, "generations": g,
    "seed": s}`` — NSGA-II with a ``generation`` event per generation
    (front size + current Pareto front); final result is
    ``NSGA2Result.to_dict()``.
``experiments``
    ``{"names": [...], "parallel": k}`` — one ``experiment`` event per
    finished :class:`ExperimentResult`, canonical (paper) order; final
    result wraps the ``to_dict()`` list.
``characterize``
    ``{"sweeps": [sweep_to_dict(...)], "parallel": k}`` — cached SPICE
    sweeps against the manager's warm shared
    :class:`~repro.spice.charlib.CharacterizationCache`; one ``sweep``
    event per result.
``replay``
    ``{"recording": Recording.to_dict(), "device": id?}`` — re-execute
    a :mod:`repro.trace` recording server-side and report whether the
    re-execution is byte-identical (plus the first divergence if not).

Handlers fan heavy work out through
:meth:`~repro.serve.jobs.JobContext.wave_run`, so every job type honors
cancellation at wave granularity and streams as waves complete.  A
request may set ``"wave": n`` to tighten that granularity (tests use
``wave=1`` to stream/cancel per item).
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, List

from repro.dse.nsga2 import NSGA2
from repro.dse.objectives import PerformanceModel
from repro.dse.pareto import non_dominated_sort
from repro.dse.space import DesignSpace
from repro.errors import ConfigurationError
from repro.fleet.report import FleetReport
from repro.fleet.runner import FleetRunner, _simulate_chunk, record_fleet_run
from repro.fleet.spec import FleetSpec
from repro.fleet.stream import (
    DEFAULT_RESERVOIR_CAPACITY,
    DEFAULT_SHARD_SIZE,
    stream_fleet,
)
from repro.serve.jobs import JobContext
from repro.trace import Recording, TraceRecorder, replay
from repro.spice.charlib import (
    DividerSweep,
    RingSweep,
    SweepRequest,
    characterize_many,
)
from repro.tech import get_technology

__all__ = [
    "HANDLERS",
    "handle_characterize",
    "handle_dse",
    "handle_experiments",
    "handle_fleet",
    "handle_replay",
    "sweep_from_dict",
    "sweep_to_dict",
]


def _parallel(request: Dict) -> int:
    value = request.get("parallel")
    if value is None:
        return 1
    value = int(value)
    if value < 1:
        raise ConfigurationError(f"parallel must be >= 1, got {value}")
    return value


def _wave(request: Dict):
    wave = request.get("wave")
    return int(wave) if wave is not None else None


# ----------------------------------------------------------------------
# fleet
# ----------------------------------------------------------------------
def handle_fleet(context: JobContext, request: Dict) -> Dict:
    """Replay a fleet, streaming per-device results as they land."""
    if "fleet" not in request:
        raise ConfigurationError('fleet job needs a "fleet" payload')
    fleet = FleetSpec.from_dict(request["fleet"])
    parallel = _parallel(request)
    eval_engine = request.get("eval_engine", "auto")
    if request.get("stream"):
        return _handle_fleet_stream(context, fleet, request, parallel, eval_engine)
    runner = FleetRunner(
        fleet,
        parallel=parallel,
        cache=context.manager.calibration_cache,
        eval_engine=eval_engine,
    )
    context.emit("fleet", name=fleet.name, devices=len(fleet))
    work = runner._work_items()

    def on_item(index: int, outcome) -> None:
        context.emit("device", index=index, result=outcome.to_dict())

    results = context.wave_run(
        functools.partial(_simulate_chunk, engine=eval_engine),
        work,
        parallel=parallel,
        chunked=True,
        on_item=on_item,
        wave=_wave(request),
        label="serve.fleet",
    )
    # Same aggregation as FleetRunner.run(): DeviceResults in id order,
    # so this payload is byte-identical to the direct run's report.
    report = FleetReport(fleet_name=fleet.name, results=results)
    if request.get("record"):
        # Same recording layout as FleetRunner.run(record=...) — one
        # shared writer — streamed to subscribers as a ``trace`` event.
        recorder = TraceRecorder()
        record_fleet_run(recorder, fleet, eval_engine, results, report=report)
        context.emit("trace", recording=recorder.recording.to_dict())
    return report.to_dict()


def _handle_fleet_stream(
    context: JobContext, fleet: FleetSpec, request: Dict, parallel: int, eval_engine: str
) -> Dict:
    """Sharded constant-memory fleet execution with sketch snapshots.

    Each folded shard emits one ``sketch`` event carrying the mergeable
    sketch's wire form — a subscriber can render live fleet-wide
    percentile estimates at any point of the run.  ``on_shard`` fires
    after every shard's process pool has been joined, so the
    cancellation check inside it never strands worker processes; the
    final payload is byte-identical to the direct
    :meth:`FleetRunner.run_streaming` result.
    """
    shard_size = int(request.get("shard_size", DEFAULT_SHARD_SIZE))
    sample = float(request.get("sample", 1.0))
    sample_seed = int(request.get("sample_seed", 0))
    capacity = int(request.get("capacity", DEFAULT_RESERVOIR_CAPACITY))
    context.emit("fleet", name=fleet.name, devices=len(fleet), mode="stream")

    def on_shard(shard_index: int, sketch) -> None:
        context.check_cancelled()
        context.emit(
            "sketch",
            shard=shard_index,
            seen=sketch.seen,
            simulated=sketch.count,
            sketch=sketch.to_dict(),
        )
        context.emit_metrics()

    recorder = TraceRecorder() if request.get("record") else None
    outcome = stream_fleet(
        fleet.devices,
        name=fleet.name,
        parallel=parallel,
        shard_size=shard_size,
        cache=context.manager.calibration_cache,
        eval_engine=eval_engine,
        sample=sample,
        sample_seed=sample_seed,
        capacity=capacity,
        on_shard=on_shard,
        record=recorder,
    )
    context.check_cancelled()
    if recorder is not None:
        context.emit("trace", recording=recorder.recording.to_dict())
    return outcome.report.to_dict()


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def handle_replay(context: JobContext, request: Dict) -> Dict:
    """Re-execute a recording server-side and verify byte-identity.

    ``{"recording": Recording.to_dict(), "device": id?}`` — the
    recording rides its own wire form (the payload a recorded ``fleet``
    job streams in its ``trace`` event).  The result reports the
    verdict plus the first divergence; the replayed event stream itself
    is summarized by digest so 10^7-device verdicts stay small.
    """
    if "recording" not in request:
        raise ConfigurationError('replay job needs a "recording" payload')
    recording = Recording.from_dict(request["recording"])
    device = request.get("device")
    context.emit(
        "replay",
        kind=recording.header.kind,
        engine=recording.header.engine,
        events=len(recording.events),
    )
    outcome = replay(
        recording,
        device=int(device) if device is not None else None,
        check=False,
    )
    context.check_cancelled()
    return {
        "identical": outcome.identical,
        "divergence": outcome.diff.divergence,
        "detail": outcome.diff.render(),
        "result_digest": outcome.replayed.result_digest,
    }


# ----------------------------------------------------------------------
# dse
# ----------------------------------------------------------------------
def _pareto_front(evaluations) -> List[Dict]:
    feasible = [e for e in evaluations if e.feasible]
    if not feasible:
        return []
    fronts = non_dominated_sort([e.objectives() for e in feasible])
    return [feasible[i].to_dict() for i in fronts[0]]


def handle_dse(context: JobContext, request: Dict) -> Dict:
    """NSGA-II exploration with generation-by-generation Pareto fronts."""
    tech = get_technology(request.get("tech", "90nm"))
    model = PerformanceModel(DesignSpace(tech))
    kwargs = {}
    for key in ("population_size", "generations", "seed"):
        if key in request:
            kwargs[key] = int(request[key])

    def on_generation(generation: int, evaluations) -> None:
        context.check_cancelled()
        front = _pareto_front(evaluations)
        context.emit(
            "generation",
            generation=generation,
            front_size=len(front),
            feasible=sum(1 for e in evaluations if e.feasible),
            pareto=front,
        )
        context.emit_metrics()

    result = NSGA2(model=model, on_generation=on_generation, **kwargs).run()
    return result.to_dict()


# ----------------------------------------------------------------------
# experiments
# ----------------------------------------------------------------------
def handle_experiments(context: JobContext, request: Dict) -> Dict:
    """Regenerate paper tables/figures, streaming each as it finishes."""
    # Late import: pulls in every experiment driver (the whole library).
    from repro.experiments.runner import EXPERIMENTS, _run_one

    names = list(request.get("names") or EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise ConfigurationError(
            f"unknown experiments {unknown}; choose from {list(EXPERIMENTS)}"
        )

    def on_item(index: int, outcome) -> None:
        result, elapsed = outcome
        context.emit(
            "experiment", name=names[index], seconds=elapsed, result=result.to_dict()
        )

    outcomes = context.wave_run(
        _run_one,
        names,
        parallel=_parallel(request),
        on_item=on_item,
        wave=_wave(request),
        label="serve.experiments",
    )
    return {"results": [result.to_dict() for result, _elapsed in outcomes]}


# ----------------------------------------------------------------------
# characterize
# ----------------------------------------------------------------------
#: Wire names for the sweep request dataclasses.
_SWEEP_KINDS = {"ring": RingSweep, "divider": DividerSweep}


def sweep_to_dict(request: SweepRequest) -> Dict:
    """Wire form of a sweep request: named tech node + scalar fields."""
    kind = "ring" if isinstance(request, RingSweep) else "divider"
    payload = {"kind": kind, "tech": request.tech.name}
    for field in dataclasses.fields(request):
        if field.name == "tech":
            continue
        value = getattr(request, field.name)
        payload[field.name] = list(value) if isinstance(value, tuple) else value
    return payload


def sweep_from_dict(data: Dict) -> SweepRequest:
    """Inverse of :func:`sweep_to_dict` (named technology nodes only)."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind not in _SWEEP_KINDS:
        raise ConfigurationError(
            f"unknown sweep kind {kind!r}; choose from {sorted(_SWEEP_KINDS)}"
        )
    cls = _SWEEP_KINDS[kind]
    tech = get_technology(payload.pop("tech", "90nm"))
    allowed = {f.name for f in dataclasses.fields(cls)} - {"tech"}
    unknown = set(payload) - allowed
    if unknown:
        raise ConfigurationError(f"unknown sweep fields {sorted(unknown)}")
    if "voltages" in payload:
        payload["voltages"] = tuple(payload["voltages"])
    return cls(tech=tech, **payload)


def handle_characterize(context: JobContext, request: Dict) -> Dict:
    """Cached SPICE characterization against the shared warm cache.

    ``"engine"`` (``"auto"``/``"exact"``/``"surrogate"``, default auto)
    and ``"tolerance"`` forward to ``characterize_many`` — the service's
    process-lifetime cache also holds certified surrogate models, so a
    fitted node's curves answer without touching the solver.
    """
    sweeps = [sweep_from_dict(s) for s in request.get("sweeps", [])]
    if not sweeps:
        raise ConfigurationError('characterize job needs a non-empty "sweeps" list')
    parallel = _parallel(request)
    engine = request.get("engine", "auto")
    tolerance = request.get("tolerance")
    if tolerance is not None:
        tolerance = float(tolerance)
    cache = context.manager.characterization_cache
    wave = _wave(request) or max(1, parallel) * 4
    results = []
    hits0, misses0 = cache.stats.hits, cache.stats.misses
    surrogate0 = cache.stats.surrogate_hits
    for start in range(0, len(sweeps), wave):
        context.check_cancelled()
        # Per-wave characterize_many keeps the parent the sole cache
        # writer while letting cancellation land between waves.
        for offset, result in enumerate(
            characterize_many(
                sweeps[start : start + wave],
                engine=engine,
                parallel=parallel,
                cache=cache,
                tolerance=tolerance,
            )
        ):
            context.emit("sweep", index=start + offset, result=result.to_dict())
            results.append(result)
        context.emit_metrics()
    context.check_cancelled()
    return {
        "results": [r.to_dict() for r in results],
        "cache": {
            "hits": cache.stats.hits - hits0,
            "misses": cache.stats.misses - misses0,
            "surrogate_hits": cache.stats.surrogate_hits - surrogate0,
        },
    }


#: The default job-type registry a :class:`JobManager` starts from.
HANDLERS = {
    "fleet": handle_fleet,
    "dse": handle_dse,
    "experiments": handle_experiments,
    "characterize": handle_characterize,
    "replay": handle_replay,
}
