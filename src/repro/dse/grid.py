"""Exhaustive grid exploration with a Pareto filter.

The deterministic cross-check for NSGA-II: sweep a factorial grid over
the Table III design space, evaluate every point with the same
performance model, and keep the non-dominated feasible set.  Because
the performance model caches ring physics per length, tens of thousands
of points evaluate in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dse.objectives import Evaluation, PerformanceModel
from repro.dse.pareto import pareto_front
from repro.dse.space import DesignPoint
from repro.obs import OBS


@dataclass
class GridResult:
    """Everything a grid sweep learned."""

    pareto: List[Evaluation]
    feasible_count: int
    total_count: int
    reject_reasons: dict

    def summary(self) -> str:
        lines = [
            f"grid: {self.total_count} points, {self.feasible_count} feasible, "
            f"{len(self.pareto)} Pareto-optimal",
        ]
        for reason, count in sorted(self.reject_reasons.items(), key=lambda kv: -kv[1]):
            lines.append(f"  rejected {count}: {reason}")
        return "\n".join(lines)


def grid_explore(
    model: PerformanceModel,
    points: Optional[Sequence[DesignPoint]] = None,
) -> GridResult:
    """Evaluate ``points`` (default: the space's standard grid) and
    return the feasible Pareto set plus rejection statistics."""
    if points is None:
        points = model.space.grid_points()
    points = list(points)
    with OBS.tracer.span("dse.grid", points=len(points), tech=model.tech.name) as span:
        from repro.batch import evaluate_many

        feasible: List[Evaluation] = []
        reasons: dict = {}
        for evaluation in evaluate_many(points, model=model):
            if evaluation.feasible:
                feasible.append(evaluation)
            else:
                reasons[evaluation.reject_reason] = reasons.get(evaluation.reject_reason, 0) + 1
        front = pareto_front([e.objectives() for e in feasible]) if feasible else []
        span.set(feasible=len(feasible), pareto=len(front))
    if OBS.metrics.enabled:
        OBS.metrics.incr("dse.grid_points", len(points))
        OBS.metrics.gauge("dse.grid_feasible", len(feasible))
        OBS.metrics.gauge("dse.grid_pareto", len(front))
    return GridResult(
        pareto=[feasible[i] for i in front],
        feasible_count=len(feasible),
        total_count=len(points),
        reject_reasons=reasons,
    )
