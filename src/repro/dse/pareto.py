"""Pareto utilities: dominance, non-dominated sorting, crowding distance.

All objective vectors are *minimization* tuples (the performance model
negates sampling frequency).  The implementations follow Deb's NSGA-II
paper: fast non-dominated sort in O(M N^2) and the standard boundary-
infinite crowding distance.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError

Objectives = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and strictly
    better somewhere (minimization)."""
    if len(a) != len(b):
        raise ConfigurationError("objective vectors differ in length")
    better_somewhere = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            better_somewhere = True
    return better_somewhere


def non_dominated_sort(objectives: Sequence[Objectives]) -> List[List[int]]:
    """Partition indices into fronts; front 0 is the Pareto set."""
    n = len(objectives)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]

    for i in range(n):
        for j in range(i + 1, n):
            if dominates(objectives[i], objectives[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(objectives[j], objectives[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    for i in range(n):
        if domination_count[i] == 0:
            fronts[0].append(i)

    current = 0
    while fronts[current]:
        nxt: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    nxt.append(j)
        current += 1
        fronts.append(nxt)
    fronts.pop()  # trailing empty front
    return fronts


def crowding_distance(objectives: Sequence[Objectives], front: Sequence[int]) -> dict:
    """Crowding distance of each index in ``front`` (boundaries: inf)."""
    distances = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: math.inf for i in front}
    n_obj = len(objectives[front[0]])
    for m in range(n_obj):
        ordered = sorted(front, key=lambda i: objectives[i][m])
        lo = objectives[ordered[0]][m]
        hi = objectives[ordered[-1]][m]
        distances[ordered[0]] = math.inf
        distances[ordered[-1]] = math.inf
        span = hi - lo
        if span <= 0:
            continue
        for k in range(1, len(ordered) - 1):
            idx = ordered[k]
            if math.isinf(distances[idx]):
                continue
            gap = objectives[ordered[k + 1]][m] - objectives[ordered[k - 1]][m]
            distances[idx] += gap / span
    return distances


def pareto_front(objectives: Sequence[Objectives]) -> List[int]:
    """Indices of the non-dominated subset (front 0)."""
    if not objectives:
        return []
    return non_dominated_sort(objectives)[0]
