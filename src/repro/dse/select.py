"""Deployment-facing configuration selection.

The exploration machinery answers "what is Pareto-optimal"; a system
designer asks a simpler question: *give me the cheapest monitor that
meets my requirements*.  :func:`select_config` is that API:

>>> from repro.dse.select import Requirements, select_config
>>> from repro.tech import TECH_90NM
>>> choice = select_config(TECH_90NM, Requirements(
...     granularity_max=0.050, f_sample_min=1e3))
>>> choice.config           # a ready-to-build FSConfig
>>> choice.evaluation       # its predicted performance

Selection runs the deterministic grid (optionally refined with a short
NSGA-II pass), filters by the requirements, and minimizes the chosen
objective (mean current by default).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.config import FSConfig
from repro.dse.grid import grid_explore
from repro.dse.nsga2 import NSGA2
from repro.dse.objectives import Evaluation, PerformanceModel
from repro.dse.pareto import pareto_front
from repro.dse.space import DesignSpace
from repro.errors import ConfigurationError
from repro.tech.ptm import TechnologyCard


@dataclass(frozen=True)
class Requirements:
    """What the deployment needs from its monitor.

    Unset limits default to the Table III bounds (i.e. "don't care").
    """

    granularity_max: float = 0.050      # V
    f_sample_min: float = 1e3           # Hz
    current_max: float = 5e-6           # A
    nvm_max_bytes: float = 128.0
    transistor_max: int = 1000
    #: Objective to minimize among qualifying configs.
    minimize: str = "current"           # "current" | "granularity" | "nvm"

    def __post_init__(self) -> None:
        if self.minimize not in ("current", "granularity", "nvm"):
            raise ConfigurationError(f"unknown objective {self.minimize!r}")
        if self.granularity_max <= 0 or self.current_max <= 0:
            raise ConfigurationError("limits must be positive")

    def admits(self, e: Evaluation) -> bool:
        return (
            e.feasible
            and e.granularity <= self.granularity_max
            and e.f_sample >= self.f_sample_min
            and e.mean_current <= self.current_max
            and e.nvm_bytes <= self.nvm_max_bytes
            and e.transistor_count <= self.transistor_max
        )

    def score(self, e: Evaluation) -> float:
        if self.minimize == "current":
            return e.mean_current
        if self.minimize == "granularity":
            return e.granularity
        return e.nvm_bytes


@dataclass(frozen=True)
class Selection:
    """A chosen design point, ready to instantiate.

    ``spice_check`` carries the device-level validation payload from
    :meth:`PerformanceModel.spice_crosscheck` when the selection ran
    with ``spice_validate=True`` (None otherwise).
    """

    config: FSConfig
    evaluation: Evaluation
    spice_check: Optional[dict] = None

    def summary(self) -> str:
        e = self.evaluation
        return (
            f"{self.config.label()}: {e.mean_current * 1e6:.3f} uA, "
            f"{e.granularity * 1e3:.1f} mV, {e.nvm_bytes:.0f} B NVM, "
            f"{e.transistor_count} transistors"
        )


def select_config(
    tech: TechnologyCard,
    requirements: Requirements,
    refine: bool = False,
    model: Optional[PerformanceModel] = None,
    seed: int = 5,
    spice_validate: bool = False,
) -> Selection:
    """Pick the best qualifying configuration for ``tech``.

    Raises :class:`ConfigurationError` when nothing in the space meets
    the requirements — with the closest miss named, so the caller knows
    which requirement to relax.  ``spice_validate=True`` additionally
    cross-checks the chosen point's ring at device level through the
    shared characterization cache and attaches the result as
    ``Selection.spice_check``.
    """
    space = DesignSpace(tech)
    model = model or PerformanceModel(space)
    # The grid sweep is deterministic per model; cache it so repeated
    # selections (different requirements, same platform) are instant.
    grid = getattr(model, "_select_grid_cache", None)
    if grid is None:
        grid = grid_explore(model)
        model._select_grid_cache = grid
    candidates = list(grid.pareto)
    if refine:
        candidates.extend(NSGA2(model, population_size=40, generations=15, seed=seed).run().pareto())
        unique = {e.point.as_tuple(): e for e in candidates}
        merged = list(unique.values())
        candidates = [merged[i] for i in pareto_front([e.objectives() for e in merged])]

    qualifying = [e for e in candidates if requirements.admits(e)]
    if not qualifying:
        nearest = min(
            (e for e in candidates if e.feasible),
            key=lambda e: max(
                e.granularity / requirements.granularity_max,
                e.mean_current / requirements.current_max,
                requirements.f_sample_min / max(e.f_sample, 1.0),
            ),
            default=None,
        )
        hint = f"; closest miss: {nearest.point}" if nearest else ""
        raise ConfigurationError(
            f"no {tech.name} configuration meets {requirements}{hint}"
        )
    best = min(qualifying, key=requirements.score)
    spice_check = None
    if spice_validate:
        # Always exact solves — the winner's validation must never be
        # answered by a surrogate fitted from the same characterization
        # path (spice_crosscheck's engine default).
        [spice_check] = model.spice_crosscheck([best.point])
    return Selection(
        config=model.to_config(best.point), evaluation=best, spice_check=spice_check
    )
