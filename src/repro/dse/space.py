"""The Failure Sentinels design space (Table III).

A design point is six parameters: RO length, sampling frequency, counter
width, enable time, NVM entry count and entry size.  NSGA-II works on a
normalized real-valued genome in [0, 1]^6; :class:`DesignSpace` owns the
mapping from genome to the discrete/log-scaled engineering values and on
to a validated :class:`~repro.core.config.FSConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.config import (
    FSConfig,
    DEFAULT_SUPPLY_RANGE,
    RO_LENGTH_MIN,
    RO_LENGTH_MAX,
    F_SAMPLE_MIN,
    F_SAMPLE_MAX,
    COUNTER_BITS_MIN,
    COUNTER_BITS_MAX,
    T_ENABLE_MIN,
    T_ENABLE_MAX,
    NVM_ENTRIES_MIN,
    NVM_ENTRIES_MAX,
    ENTRY_BITS_MIN,
    ENTRY_BITS_MAX,
)
from repro.errors import ConfigurationError
from repro.tech.ptm import TechnologyCard

#: Genome dimensionality: the six Table III design parameters.
GENOME_SIZE = 6


@dataclass(frozen=True)
class DesignPoint:
    """Decoded engineering values for one genome."""

    ro_length: int
    f_sample: float
    counter_bits: int
    t_enable: float
    nvm_entries: int
    entry_bits: int

    def as_tuple(self) -> Tuple:
        return (
            self.ro_length,
            self.f_sample,
            self.counter_bits,
            self.t_enable,
            self.nvm_entries,
            self.entry_bits,
        )

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "ro_length": self.ro_length,
            "f_sample": self.f_sample,
            "counter_bits": self.counter_bits,
            "t_enable": self.t_enable,
            "nvm_entries": self.nvm_entries,
            "entry_bits": self.entry_bits,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DesignPoint":
        return cls(**data)


class DesignSpace:
    """Genome encode/decode for one technology and supply range."""

    def __init__(
        self,
        tech: TechnologyCard,
        v_supply_range: Tuple[float, float] = DEFAULT_SUPPLY_RANGE,
    ):
        self.tech = tech
        self.v_supply_range = v_supply_range
        # Odd ring lengths only.
        self._lengths = list(range(RO_LENGTH_MIN, RO_LENGTH_MAX + 1, 2))

    # ------------------------------------------------------------------
    def decode(self, genome: Sequence[float]) -> DesignPoint:
        """Map a [0,1]^6 genome onto engineering values.

        Enable time decodes on a log scale (it spans three decades);
        sampling frequency decodes linearly over 1-10 kHz; the discrete
        parameters round to their grids.
        """
        if len(genome) != GENOME_SIZE:
            raise ConfigurationError(f"genome must have {GENOME_SIZE} entries")
        g = [min(1.0, max(0.0, float(x))) for x in genome]
        length = self._lengths[min(int(g[0] * len(self._lengths)), len(self._lengths) - 1)]
        f_sample = F_SAMPLE_MIN + g[1] * (F_SAMPLE_MAX - F_SAMPLE_MIN)
        counter_bits = COUNTER_BITS_MIN + min(
            int(g[2] * (COUNTER_BITS_MAX - COUNTER_BITS_MIN + 1)),
            COUNTER_BITS_MAX - COUNTER_BITS_MIN,
        )
        log_lo, log_hi = math.log10(T_ENABLE_MIN), math.log10(T_ENABLE_MAX)
        t_enable = 10 ** (log_lo + g[3] * (log_hi - log_lo))
        nvm_entries = NVM_ENTRIES_MIN + min(
            int(g[4] * (NVM_ENTRIES_MAX - NVM_ENTRIES_MIN + 1)),
            NVM_ENTRIES_MAX - NVM_ENTRIES_MIN,
        )
        entry_bits = ENTRY_BITS_MIN + min(
            int(g[5] * (ENTRY_BITS_MAX - ENTRY_BITS_MIN + 1)),
            ENTRY_BITS_MAX - ENTRY_BITS_MIN,
        )
        return DesignPoint(length, f_sample, counter_bits, t_enable, nvm_entries, entry_bits)

    def to_config(self, point: DesignPoint) -> FSConfig:
        """Build the validated configuration for a decoded point."""
        return FSConfig(
            tech=self.tech,
            ro_length=point.ro_length,
            counter_bits=point.counter_bits,
            t_enable=point.t_enable,
            f_sample=point.f_sample,
            nvm_entries=point.nvm_entries,
            entry_bits=point.entry_bits,
            v_supply_range=self.v_supply_range,
        )

    def config_from_genome(self, genome: Sequence[float]) -> FSConfig:
        return self.to_config(self.decode(genome))

    # ------------------------------------------------------------------
    def grid_points(
        self,
        lengths: Sequence[int] = (3, 7, 13, 23, 37, 53, 73),
        f_samples: Sequence[float] = (1e3, 2e3, 5e3, 1e4),
        counter_bits: Sequence[int] = (4, 6, 8, 10, 12, 16),
        t_enables: Sequence[float] = (1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4),
        nvm_entries: Sequence[int] = (8, 16, 32, 64, 128),
        entry_bits: Sequence[int] = (8, 10, 12, 16),
    ) -> List[DesignPoint]:
        """A deterministic factorial grid for exhaustive exploration."""
        points = []
        for n in lengths:
            for fs in f_samples:
                for cb in counter_bits:
                    for te in t_enables:
                        for ne in nvm_entries:
                            for eb in entry_bits:
                                points.append(DesignPoint(n, fs, cb, te, ne, eb))
        return points
