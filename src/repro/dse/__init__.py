"""Design-space exploration (Section V-A).

The paper models Failure Sentinels design as a multi-objective
optimization from six design parameters to five performance parameters
(Table III) and explores it with pymoo's NSGA-II.  This package
reimplements that flow offline:

* :mod:`repro.dse.space` — the design vector, Table III bounds, and the
  genome <-> :class:`~repro.core.config.FSConfig` mapping;
* :mod:`repro.dse.objectives` — the analytic performance model plus the
  rejection filter (counter overflow, level-shifter limits, bounds);
* :mod:`repro.dse.pareto` — non-dominated sorting and crowding distance;
* :mod:`repro.dse.nsga2` — NSGA-II (tournament selection, SBX crossover,
  polynomial mutation);
* :mod:`repro.dse.grid` — deterministic exhaustive sweep + Pareto filter,
  used to cross-check the optimizer.
"""

from repro.dse.space import DesignSpace, DesignPoint
from repro.dse.objectives import PerformanceModel, Evaluation
from repro.dse.pareto import dominates, non_dominated_sort, crowding_distance, pareto_front
from repro.dse.nsga2 import NSGA2, NSGA2Result
from repro.dse.grid import grid_explore
from repro.dse.select import Requirements, Selection, select_config

__all__ = [
    "DesignSpace",
    "DesignPoint",
    "PerformanceModel",
    "Evaluation",
    "dominates",
    "non_dominated_sort",
    "crowding_distance",
    "pareto_front",
    "NSGA2",
    "NSGA2Result",
    "grid_explore",
    "Requirements",
    "Selection",
    "select_config",
]
