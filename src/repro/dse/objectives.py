"""The analytic performance model driving the exploration (Section V-A).

The paper fits an analytical model to its SPICE sweeps and augments it
with NVM-table accuracy effects, the 2% thermal error, and a rejection
filter for unrealizable configurations.  :class:`PerformanceModel` is
that model: it maps a :class:`~repro.dse.space.DesignPoint` to the five
Table III performance parameters —

    (mean current, sampling frequency, granularity, NVM bytes,
     transistor count)

— with heavy physics cached per (technology, ring length) so that tens
of thousands of grid points evaluate in seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analog.divider import VoltageDivider
from repro.analog.level_shifter import LevelShifter
from repro.analog.ring_oscillator import RingOscillator
from repro.core.calibration import (
    entry_precision_floor,
    piecewise_linear_error_bound,
    voltage_of_frequency_derivatives,
)
from repro.core.config import (
    FSConfig,
    MEAN_CURRENT_MAX,
    GRANULARITY_MAX,
    NVM_OVERHEAD_MAX_BYTES,
    TRANSISTOR_COUNT_MAX,
)
from repro.core.errors_model import checkpoint_region
from repro.core.monitor import (
    _COUNTER_CAP_FACTOR,
    _CONTROL_TRANSISTORS,
    _TRANSISTORS_PER_COMPARATOR_BIT,
    _TRANSISTORS_PER_COUNTER_BIT,
)
from repro.core.sensitivity import (
    frequency_function,
    monitor_frequency,
    supply_relative_sensitivity,
    supply_sensitivity,
)
from repro.dse.space import DesignPoint, DesignSpace
from repro.errors import CalibrationError
from repro.tech.ptm import TechnologyCard
from repro.tech.temperature import DESIGN_THERMAL_ERROR_FRACTION
from repro.units import ROOM_TEMP_K


@dataclass(frozen=True)
class Evaluation:
    """One design point's performance, or its rejection reason.

    ``violation`` quantifies *how badly* an infeasible point missed:
    the relative excess over the violated bound (0 for feasible points,
    1.0 for hard structural failures such as a non-oscillating ring).
    NSGA-II's constrained ranking uses it to order infeasible members
    deterministically — least-violating first — instead of by
    population position.
    """

    point: DesignPoint
    feasible: bool
    mean_current: float = math.inf
    f_sample: float = 0.0
    granularity: float = math.inf
    nvm_bytes: float = math.inf
    transistor_count: int = 0
    reject_reason: str = ""
    violation: float = 0.0

    def objectives(self) -> Tuple[float, float, float, float, float]:
        """Minimization vector (sampling frequency negated)."""
        return (
            self.mean_current,
            -self.f_sample,
            self.granularity,
            self.nvm_bytes,
            float(self.transistor_count),
        )

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`.

        Infinities survive the round-trip: the stdlib ``json`` module
        serializes them as ``Infinity`` (its default ``allow_nan``).
        """
        return {
            "point": self.point.to_dict(),
            "feasible": self.feasible,
            "mean_current": self.mean_current,
            "f_sample": self.f_sample,
            "granularity": self.granularity,
            "nvm_bytes": self.nvm_bytes,
            "transistor_count": self.transistor_count,
            "reject_reason": self.reject_reason,
            "violation": self.violation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Evaluation":
        payload = dict(data)
        payload["point"] = DesignPoint.from_dict(payload["point"])
        return cls(**payload)


@dataclass(frozen=True)
class _RingPhysics:
    """Cached per-(tech, ring length) quantities."""

    slope_eval: float          # |df/dVsupply| at the checkpoint point (Hz/V)
    rel_sens_eval: float       # |dlnf/dVsupply| there (1/V)
    f_max: float               # peak frequency over the supply range (Hz)
    f_lo: float                # frequency at the bottom of the range (Hz)
    interp_curvature: float    # max |d2V/df2| over the range
    f_span: float              # frequency span across the range (Hz)
    enabled_current: float     # supply-averaged enabled current (A)
    monotonic: bool


class PerformanceModel:
    """Evaluate design points for one technology/supply range."""

    def __init__(
        self,
        space: DesignSpace,
        temp_k: float = ROOM_TEMP_K,
        thermal_fraction: float = DESIGN_THERMAL_ERROR_FRACTION,
    ):
        self.space = space
        self.tech: TechnologyCard = space.tech
        self.temp_k = temp_k
        self.thermal_fraction = thermal_fraction
        self._physics: Dict[int, _RingPhysics] = {}

    # ------------------------------------------------------------------
    def _ring_physics(self, ro_length: int) -> _RingPhysics:
        cached = self._physics.get(ro_length)
        if cached is not None:
            return cached

        ro = RingOscillator(self.tech, ro_length)
        divider = VoltageDivider(self.tech)
        v_lo, v_hi = self.space.v_supply_range
        region = checkpoint_region(self.space.v_supply_range)
        v_eval = 0.5 * (region[0] + region[1])

        slope = supply_sensitivity(ro, divider, v_eval, self.temp_k)
        rel = supply_relative_sensitivity(ro, divider, v_eval, self.temp_k)

        f_lo = monitor_frequency(ro, divider, v_lo, self.temp_k)
        f_max = max(
            monitor_frequency(ro, divider, v_lo + i * (v_hi - v_lo) / 8, self.temp_k)
            for i in range(9)
        )

        freq_fn = frequency_function(ro, divider, self.temp_k)
        monotonic = True
        curvature = math.inf
        span = 0.0
        try:
            f_min_m, f_max_m, _dv, curvature = voltage_of_frequency_derivatives(
                freq_fn, v_lo, v_hi
            )
            span = f_max_m - f_min_m
        except CalibrationError:
            monotonic = False

        # Enabled current: ring + divider + level shifter + per-edge
        # counter charge, averaged over three supply points.
        shifter = LevelShifter(self.tech)
        total = 0.0
        for v in (v_lo, 0.5 * (v_lo + v_hi), v_hi):
            v_ro = divider.nominal_output(v)
            f = ro.frequency(v_ro, self.temp_k)
            c_bit = _COUNTER_CAP_FACTOR * self.tech.c_switch
            total += (
                ro.enabled_current(v_ro, self.temp_k)
                + divider.bias_current(v, self.temp_k)
                + shifter.dynamic_current(f, v)
                + 2.0 * c_bit * v * f
            )
        physics = _RingPhysics(
            slope_eval=slope,
            rel_sens_eval=rel,
            f_max=f_max,
            f_lo=f_lo,
            interp_curvature=curvature,
            f_span=span,
            enabled_current=total / 3.0,
            monotonic=monotonic,
        )
        self._physics[ro_length] = physics
        return physics

    # ------------------------------------------------------------------
    def evaluate_many(self, points) -> "list[Evaluation]":
        """Evaluate a whole generation/grid chunk in one call.

        The batch entry point :func:`repro.batch.evaluate_many` lands
        here when given ``model=``.  The heavy physics is per
        (technology, ring length), so batching means warming that cache
        for every distinct length up front (deterministic ascending
        order) and then running the cheap per-point arithmetic; results
        are bit-identical to per-point :meth:`evaluate` calls, rejection
        cascade included.
        """
        from repro.obs import OBS

        points = list(points)
        with OBS.tracer.span(
            "dse.evaluate_many", points=len(points), tech=self.tech.name
        ):
            for ro_length in sorted({p.ro_length for p in points}):
                self._ring_physics(ro_length)
            return [self.evaluate(p) for p in points]

    def evaluate(self, point: DesignPoint) -> Evaluation:
        """Performance parameters for ``point``, or a rejection.

        The rejection filter mirrors Section V-A: enable time must fit
        the sample period, the counter must never overflow, the ring
        must oscillate and stay monotonic over the range, the level
        shifter must keep up, and the Table III performance bounds hold.
        """
        phys = self._ring_physics(point.ro_length)
        reject, violation = self._reject(point, phys)
        if reject:
            return Evaluation(
                point=point, feasible=False, reject_reason=reject, violation=violation
            )

        quantization = 1.0 / (point.t_enable * phys.slope_eval)
        temperature = self.thermal_fraction / phys.rel_sens_eval
        h = phys.f_span / point.nvm_entries
        interpolation = piecewise_linear_error_bound(phys.interp_curvature, h)
        v_lo, v_hi = self.space.v_supply_range
        entry = entry_precision_floor(v_lo, v_hi, point.entry_bits)
        granularity = quantization + temperature + interpolation + entry

        transistors = self._transistor_count(point)
        duty = point.t_enable * point.f_sample
        static = transistors * self.tech.leak_per_transistor
        mean_current = duty * phys.enabled_current + (1.0 - duty) * static
        nvm_bytes = point.nvm_entries * point.entry_bits / 8.0

        if granularity > GRANULARITY_MAX:
            return Evaluation(
                point=point,
                feasible=False,
                reject_reason="granularity above Table III bound",
                violation=(granularity - GRANULARITY_MAX) / GRANULARITY_MAX,
            )
        if mean_current > MEAN_CURRENT_MAX:
            return Evaluation(
                point=point,
                feasible=False,
                reject_reason="mean current above Table III bound",
                violation=(mean_current - MEAN_CURRENT_MAX) / MEAN_CURRENT_MAX,
            )

        return Evaluation(
            point=point,
            feasible=True,
            mean_current=mean_current,
            f_sample=point.f_sample,
            granularity=granularity,
            nvm_bytes=nvm_bytes,
            transistor_count=transistors,
        )

    def _reject(self, point: DesignPoint, phys: _RingPhysics) -> Tuple[str, float]:
        """Rejection reason and violation magnitude ("" / 0.0 if fine).

        Magnitudes are relative excesses over the violated bound where a
        bound exists, and 1.0 for structural failures with no natural
        scale (dead ring, non-monotonic map, slow level shifter).
        """
        duty = point.t_enable * point.f_sample
        if duty > 1.0:
            return "duty cycle exceeds 1 (enable longer than sample period)", duty - 1.0
        if phys.f_lo <= 0:
            return "ring does not oscillate at minimum supply", 1.0
        if not phys.monotonic:
            return "frequency-voltage map not monotonic over supply range", 1.0
        max_count = int(phys.f_max * point.t_enable)
        counter_cap = (1 << point.counter_bits) - 1
        if max_count > counter_cap:
            # Stable category string so grid sweeps can aggregate.
            return "counter overflow over enable window", (max_count - counter_cap) / counter_cap
        v_lo, _v_hi = self.space.v_supply_range
        shifter = LevelShifter(self.tech)
        if not shifter.can_follow(phys.f_max, v_lo, self.temp_k):
            return "level shifter cannot follow ring at minimum core voltage", 1.0
        transistors = self._transistor_count(point)
        if transistors > TRANSISTOR_COUNT_MAX:
            return (
                f"transistor count {transistors} above Table III bound",
                (transistors - TRANSISTOR_COUNT_MAX) / TRANSISTOR_COUNT_MAX,
            )
        nvm_bytes = point.nvm_entries * point.entry_bits / 8.0
        if nvm_bytes > NVM_OVERHEAD_MAX_BYTES:
            return (
                "NVM overhead above Table III bound",
                (nvm_bytes - NVM_OVERHEAD_MAX_BYTES) / NVM_OVERHEAD_MAX_BYTES,
            )
        return "", 0.0

    # ------------------------------------------------------------------
    def spice_crosscheck(
        self,
        points,
        *,
        parallel: Optional[int] = None,
        cache=None,
        engine: str = "exact",
    ) -> "list[dict]":
        """Device-level validation of the analytic model, per point.

        Routes the SPICE work through
        :func:`repro.spice.charlib.characterize_many`: one cached
        :class:`~repro.spice.charlib.RingSweep` per distinct ring
        length, at the divided supply voltages the monitor actually sees
        (range endpoints and midpoint).  Returns one dict per point with
        the analytic and device-level frequencies and their worst
        relative disagreement — a *diagnostic*, not a gate: the analytic
        model is a lumped approximation, and enrollment absorbs absolute
        offsets in the real system.

        ``engine`` defaults to ``"exact"`` — a cross-*check* answered by
        an interpolant fitted from the thing being checked would be
        circular.  Pass ``engine="auto"`` only for exploratory sweeps
        where a certified surrogate answer is acceptable.
        """
        from repro.spice.charlib import RingSweep, characterize_many

        points = list(points)
        divider = VoltageDivider(self.tech)
        v_lo, v_hi = self.space.v_supply_range
        volts = tuple(
            divider.nominal_output(v) for v in (v_lo, 0.5 * (v_lo + v_hi), v_hi)
        )
        lengths = sorted({p.ro_length for p in points})
        sweeps = [
            RingSweep(
                tech=self.tech, n_stages=n, voltages=volts, temp_k=self.temp_k
            )
            for n in lengths
        ]
        results = dict(
            zip(
                lengths,
                characterize_many(sweeps, engine=engine, parallel=parallel, cache=cache),
            )
        )
        out = []
        for point in points:
            result = results[point.ro_length]
            ro = RingOscillator(self.tech, point.ro_length)
            f_model = tuple(ro.frequency(v, self.temp_k) for v in volts)
            worst = 0.0
            oscillates = True
            for fm, fs in zip(f_model, result.frequency):
                if fm <= 0.0 or fs <= 0.0:
                    oscillates = False
                    continue
                worst = max(worst, abs(fs - fm) / fm)
            out.append(
                {
                    "ro_length": point.ro_length,
                    "voltages": list(volts),
                    "f_model": list(f_model),
                    "f_spice": list(result.frequency),
                    "max_rel_error": worst,
                    "oscillates": oscillates,
                }
            )
        return out

    def _transistor_count(self, point: DesignPoint) -> int:
        ro = RingOscillator(self.tech, point.ro_length)
        divider = VoltageDivider(self.tech)
        shifter = LevelShifter(self.tech)
        return (
            ro.transistor_count()
            + divider.transistor_count()
            + 2 * shifter.transistor_count()
            + point.counter_bits * _TRANSISTORS_PER_COUNTER_BIT
            + point.counter_bits * _TRANSISTORS_PER_COMPARATOR_BIT
            + _CONTROL_TRANSISTORS
        )

    # ------------------------------------------------------------------
    def to_config(self, point: DesignPoint) -> FSConfig:
        return self.space.to_config(point)
