"""NSGA-II, implemented from scratch (pymoo's role in the paper).

Standard components: binary tournament on (rank, crowding), simulated
binary crossover (SBX), polynomial mutation, elitist (mu + lambda)
environmental selection by non-dominated fronts with crowding-distance
truncation.  Infeasible designs (rejected by the performance model) are
handled with constrained dominance: feasible always beats infeasible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dse.objectives import Evaluation, PerformanceModel
from repro.dse.pareto import crowding_distance, non_dominated_sort
from repro.dse.space import GENOME_SIZE
from repro.errors import ConfigurationError
from repro.obs import OBS

Genome = Tuple[float, ...]


@dataclass
class NSGA2Result:
    """Final population summary."""

    evaluations: List[Evaluation]
    genomes: List[Genome]
    generations: int
    evaluated_total: int

    def pareto(self) -> List[Evaluation]:
        """Feasible, non-dominated members of the final population."""
        feasible = [e for e in self.evaluations if e.feasible]
        if not feasible:
            return []
        objs = [e.objectives() for e in feasible]
        fronts = non_dominated_sort(objs)
        return [feasible[i] for i in fronts[0]]

    def to_dict(self) -> dict:
        """JSON-ready payload; inverse of :meth:`from_dict`.

        This is the ``dse`` job's wire format in :mod:`repro.serve` —
        the streamed result must stay byte-identical to a direct
        :func:`repro.api.nsga2` call serialized the same way.
        """
        return {
            "evaluations": [e.to_dict() for e in self.evaluations],
            "genomes": [list(g) for g in self.genomes],
            "generations": self.generations,
            "evaluated_total": self.evaluated_total,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NSGA2Result":
        return cls(
            evaluations=[Evaluation.from_dict(e) for e in data["evaluations"]],
            genomes=[tuple(float(x) for x in g) for g in data["genomes"]],
            generations=data["generations"],
            evaluated_total=data["evaluated_total"],
        )


@dataclass
class NSGA2:
    """The optimizer.

    Parameters follow common NSGA-II practice: SBX/polynomial-mutation
    distribution indices of 15/20, crossover probability 0.9, mutation
    probability 1/genome-length.
    """

    model: PerformanceModel
    population_size: int = 60
    generations: int = 40
    crossover_probability: float = 0.9
    mutation_probability: float = 1.0 / GENOME_SIZE
    eta_crossover: float = 15.0
    eta_mutation: float = 20.0
    seed: int = 1
    #: Progress hook, called after every generation's environmental
    #: selection with ``(generation, evaluations)``.  It must not touch
    #: the optimizer's RNG — results with and without a hook are
    #: identical (the serve layer streams Pareto fronts from here, and
    #: raises to cancel a running exploration).
    on_generation: Optional[Callable[[int, List[Evaluation]], None]] = None

    def __post_init__(self) -> None:
        if self.population_size < 4 or self.population_size % 2:
            raise ConfigurationError("population must be even and >= 4")
        if self.generations < 1:
            raise ConfigurationError("need at least one generation")

    # ------------------------------------------------------------------
    def run(self) -> NSGA2Result:
        rng = random.Random(self.seed)
        with OBS.tracer.span(
            "dse.nsga2", population=self.population_size, generations=self.generations,
            seed=self.seed,
        ):
            population = [self._random_genome(rng) for _ in range(self.population_size)]
            evals = self._evaluate_generation(population)
            evaluated = len(population)

            for generation in range(self.generations):
                ranks, crowding = self._rank(evals)
                offspring: List[Genome] = []
                while len(offspring) < self.population_size:
                    p1 = self._tournament(rng, ranks, crowding)
                    p2 = self._tournament(rng, ranks, crowding)
                    c1, c2 = self._crossover(rng, population[p1], population[p2])
                    offspring.append(self._mutate(rng, c1))
                    if len(offspring) < self.population_size:
                        offspring.append(self._mutate(rng, c2))
                off_evals = self._evaluate_generation(offspring)
                evaluated += len(offspring)
                population, evals = self._environmental_selection(
                    population + offspring, evals + off_evals
                )
                self._observe_generation(generation, evals)
                if self.on_generation is not None:
                    self.on_generation(generation, evals)
            OBS.metrics.incr("dse.evaluations", evaluated)
            return NSGA2Result(
                evaluations=evals,
                genomes=population,
                generations=self.generations,
                evaluated_total=evaluated,
            )

    # ------------------------------------------------------------------
    def _observe_generation(self, generation: int, evals: List[Evaluation]) -> None:
        """Per-generation progress metrics: first-front size and a
        hypervolume proxy (product of the front's per-objective extents
        — cheap, monotone under front spread, good enough to watch
        convergence)."""
        if not OBS.enabled:
            return
        feasible = [e for e in evals if e.feasible]
        front_size = 0
        hv_proxy = 0.0
        if feasible:
            objs = [e.objectives() for e in feasible]
            front = non_dominated_sort(objs)[0]
            front_size = len(front)
            hv_proxy = 1.0
            for axis in range(len(objs[0])):
                values = [objs[i][axis] for i in front]
                hv_proxy *= max(values) - min(values) + 1e-30
        OBS.metrics.observe("dse.front_size", front_size)
        OBS.metrics.gauge("dse.hypervolume_proxy", hv_proxy)
        OBS.tracer.event(
            "dse.nsga2.generation",
            generation=generation,
            front_size=front_size,
            feasible=len(feasible),
            hypervolume_proxy=hv_proxy,
        )

    # ------------------------------------------------------------------
    def _evaluate(self, genome: Genome) -> Evaluation:
        point = self.model.space.decode(genome)
        return self.model.evaluate(point)

    def _evaluate_generation(self, genomes: List[Genome]) -> List[Evaluation]:
        """One batched model call per generation (identical results to
        mapping :meth:`_evaluate`, with the ring-physics cache warmed
        once per distinct length instead of on first encounter)."""
        from repro.batch import evaluate_many

        points = [self.model.space.decode(g) for g in genomes]
        return evaluate_many(points, model=self.model)

    def _random_genome(self, rng: random.Random) -> Genome:
        return tuple(rng.random() for _ in range(GENOME_SIZE))

    def _rank(self, evals: List[Evaluation]) -> Tuple[List[int], List[float]]:
        """Constrained ranks + crowding for the whole population.

        Feasible members get fronts 0..k; infeasible members all share a
        rank below every feasible front.  Their "crowding" is the
        *negated constraint-violation magnitude*, so selection prefers
        the least-violating infeasible member — a deterministic order
        independent of where the member happens to sit in the
        population (position-based tie-breaking made selection depend
        on list layout, which threatened seed-reproducibility).
        """
        feasible_idx = [i for i, e in enumerate(evals) if e.feasible]
        infeasible_idx = [i for i, e in enumerate(evals) if not e.feasible]
        ranks = [0] * len(evals)
        crowd = [0.0] * len(evals)
        if feasible_idx:
            objs = [evals[i].objectives() for i in feasible_idx]
            fronts = non_dominated_sort(objs)
            worst_front = len(fronts)
            for front_rank, front in enumerate(fronts):
                dist = crowding_distance(objs, front)
                for local in front:
                    global_idx = feasible_idx[local]
                    ranks[global_idx] = front_rank
                    crowd[global_idx] = dist[local]
        else:
            worst_front = 0
        for i in infeasible_idx:
            ranks[i] = worst_front + 1
            crowd[i] = -evals[i].violation
        return ranks, crowd

    def _tournament(self, rng: random.Random, ranks: List[int], crowd: List[float]) -> int:
        a = rng.randrange(len(ranks))
        b = rng.randrange(len(ranks))
        if ranks[a] != ranks[b]:
            return a if ranks[a] < ranks[b] else b
        return a if crowd[a] >= crowd[b] else b

    def _crossover(self, rng: random.Random, a: Genome, b: Genome) -> Tuple[Genome, Genome]:
        if rng.random() > self.crossover_probability:
            return a, b
        c1, c2 = [], []
        for x, y in zip(a, b):
            if rng.random() < 0.5 and abs(x - y) > 1e-12:
                u = rng.random()
                if u <= 0.5:
                    beta = (2 * u) ** (1.0 / (self.eta_crossover + 1))
                else:
                    beta = (1.0 / (2 * (1 - u))) ** (1.0 / (self.eta_crossover + 1))
                child1 = 0.5 * ((1 + beta) * x + (1 - beta) * y)
                child2 = 0.5 * ((1 - beta) * x + (1 + beta) * y)
                c1.append(min(1.0, max(0.0, child1)))
                c2.append(min(1.0, max(0.0, child2)))
            else:
                c1.append(x)
                c2.append(y)
        return tuple(c1), tuple(c2)

    def _mutate(self, rng: random.Random, genome: Genome) -> Genome:
        out = []
        for x in genome:
            if rng.random() < self.mutation_probability:
                u = rng.random()
                if u < 0.5:
                    delta = (2 * u) ** (1.0 / (self.eta_mutation + 1)) - 1
                else:
                    delta = 1 - (2 * (1 - u)) ** (1.0 / (self.eta_mutation + 1))
                out.append(min(1.0, max(0.0, x + delta)))
            else:
                out.append(x)
        return tuple(out)

    def _environmental_selection(
        self, genomes: List[Genome], evals: List[Evaluation]
    ) -> Tuple[List[Genome], List[Evaluation]]:
        ranks, crowd = self._rank(evals)
        order = sorted(
            range(len(genomes)),
            key=lambda i: (ranks[i], -crowd[i]),
        )
        chosen = order[: self.population_size]
        return [genomes[i] for i in chosen], [evals[i] for i in chosen]
