"""Energy-aware runtime systems enabled by practical voltage monitoring.

Section II-C of the paper argues that a cheap, poll-able voltage monitor
unlocks a family of runtimes beyond plain just-in-time checkpointing:
Chinchilla-style adaptive timers can drop their pessimistic guard bands,
and Dewdrop/HarvOS-style schedulers can match task energy costs to the
energy actually in the capacitor.  This package implements those systems
so the claim can be measured:

* :mod:`repro.runtimes.policies` — checkpoint policies for the RISC-V
  intermittent machine: just-in-time (FS interrupt), continuous
  (Mementos-style every-N-instructions), adaptive timer (Chinchilla),
  and the timer augmented with Failure Sentinels energy queries;
* :mod:`repro.runtimes.scheduler` — energy-aware task scheduling over
  the harvesting simulator: an oracle-free baseline that starts tasks
  blindly versus a scheduler that polls the monitor first.
"""

from repro.runtimes.policies import (
    CheckpointDecision,
    CheckpointPolicy,
    JustInTimePolicy,
    ContinuousPolicy,
    AdaptiveTimerPolicy,
    MonitoredTimerPolicy,
)
from repro.runtimes.scheduler import (
    Task,
    TaskStats,
    BlindScheduler,
    EnergyAwareScheduler,
    SchedulerRun,
    run_schedule,
)

__all__ = [
    "CheckpointDecision",
    "CheckpointPolicy",
    "JustInTimePolicy",
    "ContinuousPolicy",
    "AdaptiveTimerPolicy",
    "MonitoredTimerPolicy",
    "Task",
    "TaskStats",
    "BlindScheduler",
    "EnergyAwareScheduler",
    "SchedulerRun",
    "run_schedule",
]
