"""Checkpoint policies for the intermittent RISC-V machine.

A policy answers one question after every execution quantum: *checkpoint
now?*  The machine supplies a :class:`PolicyView` of what real software
could observe — instruction/time progress and the Failure Sentinels
device (if the policy deigns to read it).  Policies never see the true
capacitor voltage; that is the whole point of the comparison.

Implemented policies and their lineage:

* :class:`JustInTimePolicy` — checkpoint exactly when the monitor's
  threshold interrupt fires (the paper's primary design, Section IV-B).
* :class:`ContinuousPolicy` — checkpoint every N instructions with no
  voltage monitor at all (Mementos/Ratchet-style).  Safe but wasteful:
  most checkpoints are superfluous.
* :class:`AdaptiveTimerPolicy` — Chinchilla-style: estimate the on-time
  from observed lifetimes and checkpoint when the timer nears expiry.
  Without energy visibility it must keep a pessimistic guard band, and
  a mispredicted lifetime still costs a power failure.
* :class:`MonitoredTimerPolicy` — the paper's Section II-C argument:
  give Chinchilla a poll-able monitor and the guard band collapses to
  the monitor's resolution; the timer only schedules *when to look*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.errors import ConfigurationError


class CheckpointDecision(str, Enum):
    CONTINUE = "continue"
    CHECKPOINT = "checkpoint"


@dataclass
class PolicyView:
    """What software can observe at a decision point."""

    instructions_since_checkpoint: int
    time_since_power_on: float
    time_since_checkpoint: float
    fs_device: Optional[object] = None  # FSDevice, if present
    #: Page-granular count of volatile bytes dirtied since the last
    #: checkpoint — what a differential checkpoint would have to write.
    #: Energy-aware policies (DiCA-style) can weigh checkpoint cost
    #: against remaining energy with this.
    dirty_bytes: int = 0

    def fs_interrupt_pending(self) -> bool:
        return self.fs_device is not None and self.fs_device.irq_pending

    def fs_voltage(self) -> Optional[float]:
        """Poll the monitor (fsread + table lookup); None without one."""
        if self.fs_device is None:
            return None
        count = self.fs_device.insn_fsread()
        return self.fs_device.monitor.read_voltage(count)


class CheckpointPolicy:
    """Base class; concrete policies override :meth:`decide`."""

    #: Human-readable name for experiment tables.
    name = "abstract"

    #: Whether the machine should arm the FS threshold interrupt.
    uses_monitor_interrupt = False

    def decide(self, view: PolicyView) -> CheckpointDecision:
        raise NotImplementedError

    # -- lifecycle callbacks (for adaptation) ---------------------------
    def on_boot(self) -> None:
        """Power restored; a new lifetime begins."""

    def on_checkpoint(self, view: PolicyView) -> None:
        """A checkpoint just completed."""

    def on_power_failure(self, view: PolicyView) -> None:
        """The supply died before a checkpoint — work was lost."""


class JustInTimePolicy(CheckpointPolicy):
    """Checkpoint on the Failure Sentinels threshold interrupt."""

    name = "just-in-time (FS)"
    uses_monitor_interrupt = True

    def decide(self, view: PolicyView) -> CheckpointDecision:
        if view.fs_interrupt_pending():
            return CheckpointDecision.CHECKPOINT
        return CheckpointDecision.CONTINUE


class ContinuousPolicy(CheckpointPolicy):
    """Checkpoint every ``period_instructions`` retired instructions."""

    name = "continuous"
    uses_monitor_interrupt = False

    def __init__(self, period_instructions: int = 20_000):
        if period_instructions < 1:
            raise ConfigurationError("checkpoint period must be >= 1 instruction")
        self.period_instructions = period_instructions

    def decide(self, view: PolicyView) -> CheckpointDecision:
        if view.instructions_since_checkpoint >= self.period_instructions:
            return CheckpointDecision.CHECKPOINT
        return CheckpointDecision.CONTINUE


class AdaptiveTimerPolicy(CheckpointPolicy):
    """Chinchilla-style adaptive timer, *without* energy visibility.

    Tracks an exponential moving average of observed on-times.  A
    checkpoint is taken once ``guard_band`` of the expected lifetime has
    elapsed since power-on, and again periodically after that (the
    system cannot know how much margin remains).  A power failure means
    the estimate was too optimistic: the expectation shrinks hard.
    """

    name = "adaptive timer"
    uses_monitor_interrupt = False

    def __init__(
        self,
        initial_lifetime: float = 0.2,
        guard_band: float = 0.6,
        smoothing: float = 0.3,
        failure_backoff: float = 0.5,
    ):
        if not 0 < guard_band < 1:
            raise ConfigurationError("guard band must be in (0, 1)")
        if not 0 < smoothing <= 1:
            raise ConfigurationError("smoothing must be in (0, 1]")
        if not 0 < failure_backoff < 1:
            raise ConfigurationError("failure backoff must be in (0, 1)")
        self.expected_lifetime = initial_lifetime
        self.guard_band = guard_band
        self.smoothing = smoothing
        self.failure_backoff = failure_backoff

    def _deadline(self) -> float:
        return self.guard_band * self.expected_lifetime

    def decide(self, view: PolicyView) -> CheckpointDecision:
        if view.time_since_power_on >= self._deadline() and (
            view.time_since_checkpoint >= self._deadline() * 0.5
        ):
            return CheckpointDecision.CHECKPOINT
        return CheckpointDecision.CONTINUE

    def on_checkpoint(self, view: PolicyView) -> None:
        # Survived at least this long: blend the observation in.
        observed = view.time_since_power_on
        self.expected_lifetime += self.smoothing * (observed / self.guard_band - self.expected_lifetime)

    def on_power_failure(self, view: PolicyView) -> None:
        self.expected_lifetime *= self.failure_backoff


class MonitoredTimerPolicy(CheckpointPolicy):
    """Adaptive timer + Failure Sentinels energy queries (Section II-C).

    The timer only decides when to *look*; the checkpoint decision comes
    from the measured supply voltage, so no guard band on lifetime is
    needed.  Checkpoints happen when the supply falls within
    ``margin`` of the checkpoint threshold.
    """

    name = "timer + FS"
    uses_monitor_interrupt = True

    def __init__(self, v_checkpoint: float = 1.9, margin: float = 0.08):
        if margin <= 0:
            raise ConfigurationError("margin must be positive")
        self.v_checkpoint = v_checkpoint
        self.margin = margin

    def decide(self, view: PolicyView) -> CheckpointDecision:
        if view.fs_interrupt_pending():
            return CheckpointDecision.CHECKPOINT  # hard backstop
        volts = view.fs_voltage()
        if volts is not None and volts <= self.v_checkpoint + self.margin:
            return CheckpointDecision.CHECKPOINT
        return CheckpointDecision.CONTINUE
