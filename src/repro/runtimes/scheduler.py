"""Energy-aware task scheduling (Dewdrop / HarvOS, Section II-C).

Sensor-node firmware is a bag of tasks — sample, filter, compress,
transmit — with very different energy costs.  On harvested power, a
task started without enough buffered energy dies mid-flight and its
energy is wasted.  Dewdrop and HarvOS avoid this by comparing each
task's cost against the energy actually available, which requires
exactly the cheap, poll-able measurement Failure Sentinels provides.

Two schedulers over the same capacitor/harvester model:

* :class:`BlindScheduler` — no voltage monitor: starts the next task
  whenever the system is awake (it only knows "we booted", i.e. the
  supply reached turn-on once).
* :class:`EnergyAwareScheduler` — polls a monitor before each task and
  starts the *largest* task that fits the measured energy (classic
  best-fit); sleeps when nothing fits, letting the capacitor refill.

:func:`run_schedule` drives either against an irradiance trace and
reports completions, kills, and energy efficiency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.harvest.capacitor import BufferCapacitor
from repro.harvest.loads import SYSTEM_LEAKAGE
from repro.harvest.monitors import MonitorModel
from repro.harvest.panel import SolarPanel
from repro.harvest.traces import IrradianceTrace


@dataclass(frozen=True)
class Task:
    """One unit of application work.

    ``current`` is the system draw while the task runs; ``duration`` is
    its run time at that draw; a task that loses power before finishing
    yields nothing.
    """

    name: str
    current: float
    duration: float

    def __post_init__(self) -> None:
        if self.current <= 0 or self.duration <= 0:
            raise ConfigurationError(f"task {self.name}: current/duration must be positive")

    def energy_at(self, voltage: float) -> float:
        """Worst-case energy to finish, priced at the given rail voltage."""
        return self.current * voltage * self.duration


@dataclass
class TaskStats:
    completed: int = 0
    killed: int = 0
    useful_energy: float = 0.0
    wasted_energy: float = 0.0


class BlindScheduler:
    """Round-robin without energy visibility."""

    name = "blind"

    def __init__(self, tasks: Sequence[Task]):
        if not tasks:
            raise ConfigurationError("need at least one task")
        self.tasks = list(tasks)
        self._next = 0

    def pick(self, capacitor: BufferCapacitor, v_floor: float) -> Optional[Task]:
        task = self.tasks[self._next % len(self.tasks)]
        self._next += 1
        return task


class EnergyAwareScheduler:
    """Best-fit against the monitor's energy reading.

    The measured voltage is the true voltage corrupted pessimistically
    by the monitor's resolution (worst-case read), exactly how deployed
    firmware must treat it.
    """

    name = "energy-aware"

    def __init__(self, tasks: Sequence[Task], monitor: MonitorModel):
        if not tasks:
            raise ConfigurationError("need at least one task")
        self.tasks = sorted(tasks, key=lambda t: -t.current * t.duration)
        self.monitor = monitor

    def measured_voltage(self, true_voltage: float) -> float:
        return max(0.0, true_voltage - self.monitor.resolution)

    def pick(self, capacitor: BufferCapacitor, v_floor: float) -> Optional[Task]:
        v_meas = self.measured_voltage(capacitor.voltage)
        if v_meas <= v_floor:
            return None
        budget = 0.5 * capacitor.capacitance * (v_meas**2 - v_floor**2)
        for task in self.tasks:  # largest first: best fit
            if task.energy_at(v_meas) <= budget:
                return task
        return None


@dataclass
class SchedulerRun:
    """Outcome of one trace replay under a scheduler."""

    scheduler_name: str
    stats: TaskStats
    duration: float
    monitor_energy: float = 0.0

    @property
    def completion_ratio(self) -> float:
        total = self.stats.completed + self.stats.killed
        return self.stats.completed / total if total else 0.0

    @property
    def useful_fraction(self) -> float:
        total = self.stats.useful_energy + self.stats.wasted_energy + self.monitor_energy
        return self.stats.useful_energy / total if total > 0 else 0.0


def run_schedule(
    scheduler,
    trace: IrradianceTrace,
    monitor_current: float = 0.0,
    panel: Optional[SolarPanel] = None,
    capacitance: float = 47e-6,
    v_on: float = 3.5,
    v_floor: float = 1.8,
    leakage: float = SYSTEM_LEAKAGE,
    dt: float = 1e-3,
) -> SchedulerRun:
    """Replay ``trace``: charge, pick tasks, run or die, repeat.

    ``monitor_current`` is the voltage monitor's draw while the system
    is awake (zero for the blind scheduler, which has none).
    """
    if dt <= 0:
        raise SimulationError("dt must be positive")
    panel = panel or SolarPanel()
    cap = BufferCapacitor(capacitance=capacitance)
    stats = TaskStats()
    monitor_energy = 0.0

    t = 0.0
    awake = False
    task: Optional[Task] = None
    task_left = 0.0
    task_spent = 0.0

    steps = int(round(trace.duration / dt))
    for step in range(steps):
        t = step * dt
        p_in = panel.electrical_power(trace.at(t))
        v = cap.voltage

        if not awake:
            cap.apply_power(p_in, leakage * v, dt)
            if cap.voltage >= v_on:
                awake = True
            continue

        if task is None:
            task = scheduler.pick(cap, v_floor)
            if task is None:
                # Nothing fits: sleep one step and let the cap refill.
                cap.apply_power(p_in, leakage * v, dt)
                if cap.voltage < v_floor:
                    awake = False
                continue
            task_left = task.duration
            task_spent = 0.0

        draw = (task.current + monitor_current + leakage) * v
        cap.apply_power(p_in, draw, dt)
        spent_now = draw * dt
        task_spent += task.current * v * dt
        monitor_energy += monitor_current * v * dt
        task_left -= dt

        if cap.voltage < v_floor:
            # Power failure mid-task: the task's energy is wasted.
            stats.killed += 1
            stats.wasted_energy += task_spent
            task = None
            awake = False
        elif task_left <= 0:
            stats.completed += 1
            stats.useful_energy += task_spent
            task = None

    return SchedulerRun(
        scheduler_name=scheduler.name,
        stats=stats,
        duration=trace.duration,
        monitor_energy=monitor_energy,
    )


def default_task_mix() -> List[Task]:
    """A representative sensor-node task mix.

    Sizes span an order of magnitude so the blind scheduler regularly
    starts a transmit it cannot finish.
    """
    return [
        Task("sample", current=120e-6, duration=0.05),
        Task("filter", current=150e-6, duration=0.15),
        Task("compress", current=200e-6, duration=0.4),
        Task("transmit", current=900e-6, duration=0.5),
    ]
