"""Fleet-level result aggregation.

A fleet run produces one :class:`DeviceResult` per device — a frozen,
picklable summary of the simulator's report — and a :class:`FleetReport`
that aggregates them into the distributions a deployment planner reads:
duty cycle, checkpoint and power-failure percentiles, plus per-sink
energy rollups.

Determinism matters here: serial and parallel runs of the same fleet
must render byte-identical reports (the acceptance test for the
runner), so aggregation always walks devices in id order and the
renderer uses fixed-precision formatting only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.harvest.simulator import SimulationReport

#: Metrics the report aggregates, with how to print them.
_METRICS: Tuple[Tuple[str, str, float], ...] = (
    # (attribute, display name, display scale)
    ("duty_pct", "duty_pct", 1.0),
    ("app_time", "app_time_s", 1.0),
    ("checkpoints", "checkpoints", 1.0),
    ("power_failures", "power_failures", 1.0),
)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (numpy's default), dependency-free.

    Non-finite inputs are rejected outright: a NaN silently poisons
    ``sorted()`` (it is incomparable, so it lands at an arbitrary
    position and corrupts every interpolated rank after it) and an
    infinity turns interpolation into NaN arithmetic.
    """
    if not values:
        raise ConfigurationError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError("percentile q must be in [0, 100]")
    for v in values:
        if not math.isfinite(v):
            raise ConfigurationError(f"percentile of non-finite value {v!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = q / 100.0 * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    frac = position - lower
    return float(ordered[lower] + frac * (ordered[upper] - ordered[lower]))


def format_duration_span(shortest: float, longest: float) -> str:
    """Header wording for per-device trace durations.

    Homogeneous fleets keep the historical ``"300 s"`` form byte for
    byte; heterogeneous fleets print the min-max range instead of
    mislabelling every trace with device 0's duration.
    """
    low, high = f"{shortest:.0f}", f"{longest:.0f}"
    if low == high:
        return f"{low} s"
    return f"{low}-{high} s"


@dataclass(frozen=True)
class DeviceResult:
    """One device's life, summarized for aggregation."""

    device_id: int
    monitor_name: str
    policy: str
    engine: str
    duration: float
    app_time: float
    checkpoint_time: float
    restore_time: float
    off_time: float
    checkpoints: int
    power_failures: int
    v_checkpoint: float
    energy_by_sink: Tuple[Tuple[str, float], ...]
    energy_harvested: float

    @classmethod
    def from_report(
        cls,
        device_id: int,
        policy: str,
        engine: str,
        report: SimulationReport,
    ) -> "DeviceResult":
        return cls(
            device_id=device_id,
            monitor_name=report.monitor_name,
            policy=policy,
            engine=engine,
            duration=report.duration,
            app_time=report.app_time,
            checkpoint_time=report.checkpoint_time,
            restore_time=report.restore_time,
            off_time=report.off_time,
            checkpoints=report.checkpoints,
            power_failures=report.power_failures,
            v_checkpoint=report.v_checkpoint,
            energy_by_sink=tuple(sorted(report.energy_by_sink.items())),
            energy_harvested=report.energy_harvested,
        )

    @property
    def duty(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.app_time / self.duration

    @property
    def duty_pct(self) -> float:
        return 100.0 * self.duty

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "device_id": self.device_id,
            "monitor_name": self.monitor_name,
            "policy": self.policy,
            "engine": self.engine,
            "duration": self.duration,
            "app_time": self.app_time,
            "checkpoint_time": self.checkpoint_time,
            "restore_time": self.restore_time,
            "off_time": self.off_time,
            "checkpoints": self.checkpoints,
            "power_failures": self.power_failures,
            "v_checkpoint": self.v_checkpoint,
            "energy_by_sink": dict(self.energy_by_sink),
            "energy_harvested": self.energy_harvested,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DeviceResult":
        payload = dict(data)
        # Construction sorts the sink tuple, so a dict round-trip is
        # order-exact.
        payload["energy_by_sink"] = tuple(
            sorted(dict(payload.get("energy_by_sink", {})).items())
        )
        return cls(**payload)


@dataclass
class FleetReport:
    """Aggregate view over an id-ordered list of device results."""

    fleet_name: str
    results: List[DeviceResult] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.results = sorted(self.results, key=lambda r: r.device_id)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.results)

    def metric_values(self, metric: str) -> List[float]:
        return [float(getattr(r, metric)) for r in self.results]

    def stats(self, metric: str) -> Dict[str, float]:
        """mean / p50 / p95 / p99 of one per-device metric.

        The mean is the correctly rounded sum (``math.fsum``), so it is
        independent of device order and bit-equal to the streaming
        :class:`~repro.fleet.stream.FleetSketch` mean — the sketch
        regression tests assert exact equality, not approximation.
        """
        values = self.metric_values(metric)
        if not values:
            raise ConfigurationError("fleet report has no results")
        return {
            "mean": math.fsum(values) / len(values),
            "p50": percentile(values, 50.0),
            "p95": percentile(values, 95.0),
            "p99": percentile(values, 99.0),
        }

    def energy_rollup(self) -> Dict[str, float]:
        """Total joules per sink across the fleet (correctly rounded
        ``math.fsum``, so the total is device-order independent and
        bit-equal to the streaming sketch's exact energy totals)."""
        per_sink: Dict[str, List[float]] = {}
        for result in self.results:
            for sink, joules in result.energy_by_sink:
                per_sink.setdefault(sink, []).append(joules)
        return {sink: math.fsum(values) for sink, values in sorted(per_sink.items())}

    def by_monitor(self) -> Dict[str, List[DeviceResult]]:
        groups: Dict[str, List[DeviceResult]] = {}
        for result in self.results:
            groups.setdefault(result.monitor_name, []).append(result)
        return dict(sorted(groups.items()))

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "fleet_name": self.fleet_name,
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetReport":
        return cls(
            fleet_name=data["fleet_name"],
            results=[DeviceResult.from_dict(r) for r in data.get("results", [])],
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Fixed-precision text report (byte-stable across runs)."""
        if not self.results:
            return f"fleet {self.fleet_name}: (no results)"
        durations = [r.duration for r in self.results]
        span = format_duration_span(min(durations), max(durations))
        lines = [
            f"fleet {self.fleet_name}: {len(self.results)} devices, {span} traces"
        ]
        header = f"  {'metric':<16s} {'mean':>10s} {'p50':>10s} {'p95':>10s} {'p99':>10s}"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for attr, label, _scale in _METRICS:
            s = self.stats(attr)
            lines.append(
                f"  {label:<16s} {s['mean']:>10.4f} {s['p50']:>10.4f} "
                f"{s['p95']:>10.4f} {s['p99']:>10.4f}"
            )
        lines.append("  energy by sink:")
        rollup = self.energy_rollup()
        total = sum(rollup.values())
        for sink, joules in rollup.items():
            share = 100.0 * joules / total if total > 0 else 0.0
            lines.append(f"    {sink:<11s} {joules * 1e3:>10.4f} mJ ({share:5.1f}%)")
        lines.append("  duty by monitor:")
        for monitor_name, group in self.by_monitor().items():
            mean_duty = math.fsum(r.duty_pct for r in group) / len(group)
            lines.append(
                f"    {monitor_name:<12s} {mean_duty:>7.3f}% mean over {len(group)} device(s)"
            )
        return "\n".join(lines)
