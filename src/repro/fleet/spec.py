"""Fleet description: N heterogeneous devices, declaratively.

The paper's pitch is *ubiquity* — thousands of cheap monitored devices
scattered across wildly different harvesting conditions.  A fleet here
is a list of :class:`DeviceSpec` values, each one naming (not holding)
its technology node, monitor design, panel, capacitor, irradiance trace
generator and runtime policy.  Keeping specs declarative and built from
primitives makes them trivially picklable, so the runner can ship them
to worker processes, and makes two devices with the same monitor design
share one calibration-cache entry.

:func:`synthesize_fleet` generates a deterministic heterogeneous fleet
from a single seed — the fleet-scale analogue of the seeded trace
generators in :mod:`repro.harvest.traces`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.harvest.traces import (
    IrradianceTrace,
    constant_trace,
    diurnal_trace,
    nyc_pedestrian_night,
    rfid_reader_trace,
    thermal_gradient_trace,
)

#: Monitor kinds a device can name.  ``fs`` takes custom design
#: parameters through ``monitor_params``; the rest are parameter-free.
MONITOR_KINDS = ("ideal", "fs_lp", "fs_hp", "fs", "comparator", "adc")

#: Simulation engines (resolved in :mod:`repro.fleet.runner`).
ENGINES = ("fast", "reference")

#: Runtime checkpoint policies, expressed as the extra voltage margin
#: software pads onto the monitor-derived checkpoint threshold.  ``jit``
#: trusts the monitor completely (the paper's Section IV-B design);
#: ``guarded`` and ``paranoid`` model Chinchilla-style conservatism —
#: spare margin bought with application time.
POLICY_MARGINS: Dict[str, float] = {
    "jit": 0.0,
    "guarded": 0.025,
    "paranoid": 0.050,
}

#: Seeded trace generators a device can name: ``f(duration, seed)``.
#: Every entry must honor both documented arguments (the pre-1.8
#: ``constant`` entry silently dropped ``seed``; it now forwards it, and
#: ``tests/fleet/test_spec.py`` asserts the contract for all entries).
#: Extra keyword arguments (``rng=`` for recorded runs) pass through.
TRACE_GENERATORS: Dict[str, Callable[..., IrradianceTrace]] = {
    "nyc_pedestrian_night": lambda duration, seed, **kw: nyc_pedestrian_night(
        duration=duration, seed=seed, **kw
    ),
    # The raw generator's sunrise/sunset default to a 24 h day and
    # reject shorter durations; the registry entry scales the day shape
    # to the requested duration so the contract holds for any length.
    "diurnal": lambda duration, seed, **kw: diurnal_trace(
        duration=duration,
        dt=max(1e-3, duration / 1440.0),
        sunrise=duration * 0.25,
        sunset=duration * (5.0 / 6.0),
        seed=seed,
        **kw,
    ),
    "rfid_reader": lambda duration, seed, **kw: rfid_reader_trace(
        duration=duration, seed=seed, **kw
    ),
    "thermal_gradient": lambda duration, seed, **kw: thermal_gradient_trace(
        duration=duration, seed=seed, **kw
    ),
    "constant": lambda duration, seed, **kw: constant_trace(
        0.5, duration, seed=seed, **kw
    ),
}


@dataclass(frozen=True)
class DeviceSpec:
    """One deployed device: everything needed to replay its life.

    All fields are primitives (names, numbers, tuples), so a spec is
    hashable where it matters, picklable everywhere, and two devices
    sharing a monitor design share a calibration key.
    """

    device_id: int
    tech: str = "90nm"
    monitor: str = "fs_lp"
    #: Design parameters for ``monitor == "fs"`` (sorted key/value
    #: pairs, e.g. ``(("counter_bits", 8), ("f_sample", 1000.0))``).
    monitor_params: Tuple[Tuple[str, float], ...] = ()
    panel_area_cm2: float = 5.0
    capacitance: float = 47e-6
    trace: str = "nyc_pedestrian_night"
    trace_seed: int = 0
    trace_duration: float = 300.0
    #: Site irradiance multiplier (shaded courtyard vs. storefront).
    trace_scale: float = 1.0
    policy: str = "jit"
    engine: str = "fast"
    dt: float = 1e-3

    def __post_init__(self) -> None:
        if self.monitor not in MONITOR_KINDS:
            raise ConfigurationError(
                f"unknown monitor kind {self.monitor!r}; choose from {MONITOR_KINDS}"
            )
        if self.monitor != "fs" and self.monitor_params:
            raise ConfigurationError("monitor_params only apply to the 'fs' kind")
        if self.trace not in TRACE_GENERATORS:
            raise ConfigurationError(
                f"unknown trace {self.trace!r}; choose from {sorted(TRACE_GENERATORS)}"
            )
        if self.policy not in POLICY_MARGINS:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; choose from {sorted(POLICY_MARGINS)}"
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(f"unknown engine {self.engine!r}; choose from {ENGINES}")
        if self.panel_area_cm2 <= 0 or self.capacitance <= 0:
            raise ConfigurationError("panel area and capacitance must be positive")
        if self.trace_duration <= 0 or self.dt <= 0:
            raise ConfigurationError("trace duration and dt must be positive")
        if self.trace_scale < 0:
            raise ConfigurationError("trace scale cannot be negative")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload; inverse of :meth:`from_dict`.

        This is the per-device wire format for ``fleet`` jobs in
        :mod:`repro.serve` (api v1.1.0 ``to_dict`` convention).
        """
        return {
            "device_id": self.device_id,
            "tech": self.tech,
            "monitor": self.monitor,
            "monitor_params": [[k, v] for k, v in self.monitor_params],
            "panel_area_cm2": self.panel_area_cm2,
            "capacitance": self.capacitance,
            "trace": self.trace,
            "trace_seed": self.trace_seed,
            "trace_duration": self.trace_duration,
            "trace_scale": self.trace_scale,
            "policy": self.policy,
            "engine": self.engine,
            "dt": self.dt,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DeviceSpec":
        payload = dict(data)
        payload["monitor_params"] = tuple(
            (k, v) for k, v in payload.get("monitor_params", ())
        )
        return cls(**payload)

    def calibration_key(self) -> Tuple:
        """What makes two devices share an enrollment/monitor curve."""
        return (self.tech, self.monitor, self.monitor_params)

    def policy_margin(self) -> float:
        return POLICY_MARGINS[self.policy]

    def build_trace(self, rng: Optional[random.Random] = None) -> IrradianceTrace:
        """The device's irradiance trace; ``rng`` substitutes a
        pre-seeded stream (recorded replays pass a counting one so the
        draw count lands in the event stream)."""
        kwargs = {} if rng is None else {"rng": rng}
        trace = TRACE_GENERATORS[self.trace](
            self.trace_duration, self.trace_seed, **kwargs
        )
        if self.trace_scale != 1.0:
            trace = trace.scaled(self.trace_scale)
        return trace


@dataclass(frozen=True)
class FleetSpec:
    """An ordered collection of devices plus a label for reports."""

    devices: Tuple[DeviceSpec, ...]
    name: str = "fleet"

    def __post_init__(self) -> None:
        if not self.devices:
            raise ConfigurationError("a fleet needs at least one device")
        ids = [d.device_id for d in self.devices]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("device ids must be unique within a fleet")

    def __len__(self) -> int:
        return len(self.devices)

    def calibration_keys(self) -> List[Tuple]:
        """Unique calibration keys, in first-appearance order."""
        seen: Dict[Tuple, None] = {}
        for device in self.devices:
            seen.setdefault(device.calibration_key(), None)
        return list(seen)

    def with_engine(self, engine: str) -> "FleetSpec":
        return FleetSpec(
            devices=tuple(replace(d, engine=engine) for d in self.devices),
            name=self.name,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload; inverse of :meth:`from_dict` (the
        ``fleet`` job wire format in :mod:`repro.serve`)."""
        return {
            "name": self.name,
            "devices": [d.to_dict() for d in self.devices],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetSpec":
        return cls(
            devices=tuple(DeviceSpec.from_dict(d) for d in data.get("devices", [])),
            name=data.get("name", "fleet"),
        )


def iter_synthesized_devices(
    n_devices: int,
    seed: int = 1,
    duration: float = 300.0,
    trace: str = "nyc_pedestrian_night",
    engine: str = "fast",
    monitors: Sequence[str] = ("fs_lp", "fs_hp", "comparator", "adc"),
    policies: Sequence[str] = ("jit", "guarded"),
) -> Iterator[DeviceSpec]:
    """Generate :func:`synthesize_fleet`'s devices lazily, one at a time.

    Yields exactly the specs ``synthesize_fleet(n_devices, seed, ...)``
    would hold (same RNG stream, same round-robins), without ever
    materializing the fleet — the device source for
    :func:`repro.fleet.stream.stream_fleet`, where a 10^6-device run
    must keep memory flat in fleet size.
    """
    if n_devices < 1:
        raise ConfigurationError("fleet needs at least one device")
    rng = random.Random(seed)
    cap_choices = (22e-6, 47e-6, 100e-6, 220e-6)
    for i in range(n_devices):
        yield DeviceSpec(
            device_id=i,
            monitor=monitors[i % len(monitors)],
            panel_area_cm2=round(rng.uniform(2.0, 10.0), 2),
            capacitance=rng.choice(cap_choices),
            trace=trace,
            trace_seed=seed * 10_000 + i,
            trace_duration=duration,
            trace_scale=round(rng.uniform(0.5, 2.0), 3),
            policy=policies[i % len(policies)],
            engine=engine,
        )


def synthesize_fleet(
    n_devices: int,
    seed: int = 1,
    duration: float = 300.0,
    trace: str = "nyc_pedestrian_night",
    engine: str = "fast",
    monitors: Sequence[str] = ("fs_lp", "fs_hp", "comparator", "adc"),
    policies: Sequence[str] = ("jit", "guarded"),
    name: Optional[str] = None,
) -> FleetSpec:
    """A deterministic heterogeneous fleet from one seed.

    Devices round-robin through the monitor kinds (so the calibration
    cache has real sharing to exploit) while the physical site varies
    per device: panel area 2-10 cm^2, buffer capacitor from the usual
    E6 values, per-site irradiance scale 0.5-2x, and a unique trace
    seed.  The same ``(n_devices, seed)`` always produces the same
    fleet, which is what makes serial-vs-parallel and cache-on/off
    comparisons meaningful.  (:func:`iter_synthesized_devices` yields
    the same devices without materializing them.)
    """
    devices = tuple(
        iter_synthesized_devices(
            n_devices,
            seed=seed,
            duration=duration,
            trace=trace,
            engine=engine,
            monitors=monitors,
            policies=policies,
        )
    )
    return FleetSpec(
        devices=devices,
        name=name or f"synthetic-{n_devices}dev-seed{seed}",
    )
