"""Sharded, constant-memory fleet execution and aggregation.

:class:`~repro.fleet.runner.FleetRunner` materializes every
:class:`~repro.fleet.report.DeviceResult` and computes exact
percentiles — fine at 10^3 devices, impossible at the 10^6-10^7 the
paper's *ubiquity* claim is about.  This module is the deployment-scale
path:

* **mergeable sketches** — :class:`StreamingMoments` (streaming
  mean/variance), :class:`ReservoirSketch` (deterministic seeded
  bottom-k percentile sample) and per-sink energy totals, combined in
  one :class:`FleetSketch`.  Every sketch supports ``merge()`` and a
  JSON ``to_dict()``/``from_dict()`` round trip, so shard-local sketches
  fold into one fleet answer;
* **a shard loop** — :func:`stream_fleet` pulls devices from any
  iterable (a generator for synthetic fleets), simulates one shard at a
  time on top of :func:`repro.exec.run_tasks`, folds each shard into
  the sketch, and never holds more than one shard of results;
* **stratified sampling** — :class:`StratifiedSampler` admits a seeded,
  order-independent subset of devices per ``(monitor, policy)`` stratum
  so a 10^7-device answer can come from 10^4 simulations, with the
  sampling error surfaced as ±95% confidence columns on
  :class:`FleetSketchReport`.

Determinism is load-bearing, exactly as it is for the exact runner:
``FleetSketchReport.render()`` must be byte-identical whatever the
shard size, shard order, or merge tree.  Textbook Welford/Chan merges
drift in the last ulp with merge order, which would break that
guarantee, so the moments and totals here carry *exact* sums (Shewchuk
partials, the ``math.fsum`` representation): every merge is exactly
associative and commutative, the reported mean is the correctly rounded
mean of the true values, and small-fleet sketches equal
:meth:`FleetReport.stats` to the last bit (the regression contract in
``tests/fleet/test_stream.py``).  The reservoir keeps the ``capacity``
devices with the smallest seeded hash — a pure function of the device
*set*, so shard order cannot change which sample survives.
"""

from __future__ import annotations

import functools
import heapq
import itertools
import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.exec import run_tasks
from repro.fleet.cache import CalibrationCache
from repro.fleet.report import (
    _METRICS,
    DeviceResult,
    format_duration_span,
    percentile,
)
from repro.obs import OBS
from repro.trace.format import payload_digest

__all__ = [
    "DEFAULT_RESERVOIR_CAPACITY",
    "DEFAULT_SHARD_SIZE",
    "ExactSum",
    "FleetSketch",
    "FleetSketchReport",
    "FleetStreamResult",
    "ReservoirSketch",
    "StratifiedSampler",
    "StreamingMoments",
    "stream_fleet",
]

#: Devices materialized (specs, work items, results) at any moment.
DEFAULT_SHARD_SIZE = 2048

#: Percentile sample size.  Rank-space standard error at p99 is
#: ``sqrt(.99*.01/4096)`` ~ 0.16 percentage points of rank — a couple of
#: render digits on smooth fleet distributions.
DEFAULT_RESERVOIR_CAPACITY = 4096

#: Two-sided 95% normal quantile, used for every CI half-width.
_Z95 = 1.959963984540054


def _check_finite(value: float, what: str) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ConfigurationError(f"non-finite {what} {value!r} cannot be aggregated")
    return value


def _hash64(seed: int, key: str) -> int:
    """Deterministic 64-bit priority for sampling and the reservoir.

    ``blake2b`` keyed by the seed, so the admitted set is a pure
    function of ``(seed, key)`` — independent of process hash
    randomization, shard order, and merge order.
    """
    import hashlib

    digest = hashlib.blake2b(
        f"{seed}:{key}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


# ----------------------------------------------------------------------
# Exact streaming sums (the foundation under every sketch)
# ----------------------------------------------------------------------
class ExactSum:
    """A streaming, mergeable, *exact* float sum (Shewchuk partials).

    The running sum is held as a list of non-overlapping partials whose
    mathematical sum equals the true (infinite-precision) sum of every
    value added so far; :attr:`value` rounds that once, via
    :func:`math.fsum`.  Because the represented quantity is exact,
    ``merge()`` is exactly associative and commutative — the property
    the sharded fleet path's byte-identical renders stand on, and the
    reason this replaces a plain Welford/Chan accumulator.
    """

    __slots__ = ("_partials",)

    def __init__(self, partials: Iterable[float] = ()):
        self._partials: List[float] = []
        for p in partials:
            self.add(p)

    def add(self, x: float) -> None:
        x = float(x)
        partials = self._partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def merge(self, other: "ExactSum") -> None:
        for p in other._partials:
            self.add(p)

    @property
    def value(self) -> float:
        """The correctly rounded sum of everything added."""
        return math.fsum(self._partials)

    def to_dict(self) -> Dict[str, object]:
        return {"partials": list(self._partials)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExactSum":
        return cls(data.get("partials", ()))


class StreamingMoments:
    """Mergeable streaming count/mean/variance/min/max of one metric.

    The first and second moments ride on :class:`ExactSum`, so the mean
    is the correctly rounded mean (bit-equal to
    ``math.fsum(values) / n`` however the values were sharded) and the
    variance is a deterministic function of the value *set*.
    """

    __slots__ = ("n", "_sum", "_sumsq", "_min", "_max")

    def __init__(self) -> None:
        self.n = 0
        self._sum = ExactSum()
        self._sumsq = ExactSum()
        self._min = math.inf
        self._max = -math.inf

    def push(self, value: float) -> None:
        value = _check_finite(value, "metric value")
        self.n += 1
        self._sum.add(value)
        self._sumsq.add(value * value)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "StreamingMoments") -> None:
        self.n += other.n
        self._sum.merge(other._sum)
        self._sumsq.merge(other._sumsq)
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def mean(self) -> float:
        if self.n == 0:
            raise ConfigurationError("mean of an empty moments sketch")
        return self._sum.value / self.n

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 below two observations)."""
        if self.n < 2:
            return 0.0
        total = self._sum.value
        return max(0.0, (self._sumsq.value - total * total / self.n) / (self.n - 1))

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min

    @property
    def maximum(self) -> float:
        return self._max

    def sem(self, population: Optional[int] = None) -> float:
        """Standard error of the mean, with the finite-population
        correction when the sampled-from population size is known."""
        if self.n == 0:
            return 0.0
        err = self.std / math.sqrt(self.n)
        if population is not None and population > 1:
            if self.n >= population:
                return 0.0
            err *= math.sqrt((population - self.n) / (population - 1))
        return err

    def to_dict(self) -> Dict[str, object]:
        return {
            "n": self.n,
            "sum": self._sum.to_dict(),
            "sumsq": self._sumsq.to_dict(),
            "min": self._min if self.n else None,
            "max": self._max if self.n else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamingMoments":
        out = cls()
        out.n = int(data.get("n", 0))
        out._sum = ExactSum.from_dict(data.get("sum", {}))
        out._sumsq = ExactSum.from_dict(data.get("sumsq", {}))
        if out.n:
            out._min = float(data["min"])
            out._max = float(data["max"])
        return out


class ReservoirSketch:
    """Deterministic bottom-k percentile sample.

    Keeps the ``capacity`` values whose keys hash smallest under a
    seeded 64-bit hash — a KMV-style reservoir.  Unlike the classic
    random-swap reservoir, membership is a pure function of the device
    *set*, so any shard order or merge tree yields the same sample and
    therefore the same rendered percentiles.  While ``seen <=
    capacity`` the sketch holds everything and its quantiles are exact
    (the small-fleet regression contract).
    """

    __slots__ = ("capacity", "seed", "seen", "_heap")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY, seed: int = 0):
        if capacity < 1:
            raise ConfigurationError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.seed = int(seed)
        self.seen = 0
        # Max-heap by (priority, key) via negation: the root is the
        # entry we evict first.  Keys are unique (device ids), so the
        # (priority, key) order is total and value is never compared.
        self._heap: List[Tuple[int, int, float]] = []

    def push(self, value: float, key) -> None:
        value = _check_finite(value, "reservoir value")
        self.seen += 1
        self._offer(_hash64(self.seed, str(key)), str(key), value)

    def _offer(self, priority: int, key: str, value: float) -> None:
        entry = (-priority, key, value)
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
        elif entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)

    def merge(self, other: "ReservoirSketch") -> None:
        if (other.capacity, other.seed) != (self.capacity, self.seed):
            raise ConfigurationError(
                "cannot merge reservoir sketches with different capacity/seed"
            )
        self.seen += other.seen
        for neg_priority, key, value in other._heap:
            self._offer(-neg_priority, key, value)

    def __len__(self) -> int:
        return len(self._heap)

    def values(self) -> List[float]:
        """The retained sample, sorted by value."""
        return sorted(entry[2] for entry in self._heap)

    def quantile(self, q: float) -> float:
        return percentile(self.values(), q)

    def quantile_ci(self, q: float, population: Optional[int] = None) -> Tuple[float, float]:
        """Rank-space 95% CI for ``quantile(q)``, mapped to value space.

        Exact (zero-width) when the sketch holds the whole population.
        """
        m = len(self._heap)
        if m == 0:
            raise ConfigurationError("quantile of an empty reservoir")
        point = self.quantile(q)
        if population is not None and m >= population:
            return (point, point)
        p = q / 100.0
        half = 100.0 * _Z95 * math.sqrt(max(p * (1.0 - p), 0.0) / m)
        if population is not None and population > 1:
            half *= math.sqrt(max(population - m, 0) / (population - 1))
        lo = self.quantile(max(0.0, q - half))
        hi = self.quantile(min(100.0, q + half))
        return (lo, hi)

    def to_dict(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "seed": self.seed,
            "seen": self.seen,
            "entries": [[-neg, key, value] for neg, key, value in sorted(self._heap)],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReservoirSketch":
        out = cls(capacity=int(data["capacity"]), seed=int(data.get("seed", 0)))
        out.seen = int(data.get("seen", 0))
        for priority, key, value in data.get("entries", []):
            out._offer(int(priority), str(key), float(value))
        return out


# ----------------------------------------------------------------------
# Stratified sampling
# ----------------------------------------------------------------------
class StratifiedSampler:
    """Seeded Bernoulli sampling, stratified by ``(monitor, policy)``.

    Each device is admitted iff its seeded hash falls below
    ``fraction`` of the 64-bit range, with the stratum label folded
    into the hash so every stratum sees an independent admission
    stream.  Membership is a pure per-device function — streaming- and
    merge-order independent, and stable across runs — and the realized
    per-stratum counts are tracked by :class:`FleetSketch`, which uses
    them to scale energy totals stratum by stratum.
    """

    def __init__(self, fraction: float = 1.0, seed: int = 0):
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"sample fraction must be in (0, 1], got {fraction}"
            )
        self.fraction = float(fraction)
        self.seed = int(seed)
        self._threshold = int(self.fraction * float(2**64))

    def admit(self, device) -> bool:
        if self.fraction >= 1.0:
            return True
        key = f"sample:{device.monitor}/{device.policy}:{device.device_id}"
        return _hash64(self.seed, key) < self._threshold


def device_stratum(device) -> str:
    """The sampling stratum a :class:`DeviceSpec` belongs to."""
    return f"{device.monitor}/{device.policy}"


# ----------------------------------------------------------------------
# The fleet-level sketch
# ----------------------------------------------------------------------
class FleetSketch:
    """Constant-size aggregate of arbitrarily many device results.

    Holds, per report metric, a :class:`StreamingMoments` and a
    :class:`ReservoirSketch`; per ``(stratum, sink)``, an exact energy
    total; per monitor design, duty moments; plus duration min/max and
    per-stratum seen/sampled counts.  Everything merges, everything
    round-trips through JSON, and every rendered figure is a
    merge-order-independent function of the device set.
    """

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY, seed: int = 0):
        self.capacity = int(capacity)
        self.seed = int(seed)
        self.count = 0  # devices folded in (simulated)
        self.metrics: Dict[str, Tuple[StreamingMoments, ReservoirSketch]] = {
            attr: (StreamingMoments(), ReservoirSketch(capacity=capacity, seed=seed))
            for attr, _label, _scale in _METRICS
        }
        #: stratum -> sink -> exact joules over *sampled* devices.
        self.energy: Dict[str, Dict[str, ExactSum]] = {}
        #: monitor display name -> duty_pct moments (sampled devices).
        self.monitors: Dict[str, StreamingMoments] = {}
        self.durations = StreamingMoments()
        #: stratum -> [seen, sampled] device counts.
        self.strata: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    @property
    def seen(self) -> int:
        """Devices observed, sampled or not."""
        return sum(seen for seen, _sampled in self.strata.values())

    @property
    def fully_sampled(self) -> bool:
        return all(seen == sampled for seen, sampled in self.strata.values())

    def _stratum(self, stratum: str) -> List[int]:
        return self.strata.setdefault(stratum, [0, 0])

    def update(self, result: DeviceResult, stratum: Optional[str] = None) -> None:
        """Fold one simulated device in (and count it as seen)."""
        if stratum is None:
            stratum = f"{result.monitor_name}/{result.policy}"
        counts = self._stratum(stratum)
        counts[0] += 1
        counts[1] += 1
        self.count += 1
        for attr, (moments, reservoir) in self.metrics.items():
            value = float(getattr(result, attr))
            moments.push(value)
            reservoir.push(value, key=result.device_id)
        sinks = self.energy.setdefault(stratum, {})
        for sink, joules in result.energy_by_sink:
            sinks.setdefault(sink, ExactSum()).add(
                _check_finite(joules, f"energy[{sink}]")
            )
        self.monitors.setdefault(result.monitor_name, StreamingMoments()).push(
            result.duty_pct
        )
        self.durations.push(result.duration)

    def skip(self, stratum: str) -> None:
        """Count one not-sampled device toward its stratum total."""
        self._stratum(stratum)[0] += 1

    def merge(self, other: "FleetSketch") -> None:
        if (other.capacity, other.seed) != (self.capacity, self.seed):
            raise ConfigurationError(
                "cannot merge fleet sketches with different capacity/seed"
            )
        self.count += other.count
        for attr, (moments, reservoir) in self.metrics.items():
            other_moments, other_reservoir = other.metrics[attr]
            moments.merge(other_moments)
            reservoir.merge(other_reservoir)
        for stratum, sinks in other.energy.items():
            mine = self.energy.setdefault(stratum, {})
            for sink, total in sinks.items():
                mine.setdefault(sink, ExactSum()).merge(total)
        for name, moments in other.monitors.items():
            self.monitors.setdefault(name, StreamingMoments()).merge(moments)
        self.durations.merge(other.durations)
        for stratum, (seen, sampled) in other.strata.items():
            counts = self._stratum(stratum)
            counts[0] += seen
            counts[1] += sampled

    # ------------------------------------------------------------------
    def stats(self, metric: str) -> Dict[str, float]:
        """mean / p50 / p95 / p99 — drop-in for :meth:`FleetReport.stats`.

        Exact (bit-equal to the materialized report) whenever the
        reservoir held every device; otherwise the percentiles carry
        the sampling error :meth:`confidence` quantifies.
        """
        if self.count == 0:
            raise ConfigurationError("fleet sketch has no results")
        if metric not in self.metrics:
            raise ConfigurationError(f"unknown sketch metric {metric!r}")
        moments, reservoir = self.metrics[metric]
        return {
            "mean": moments.mean,
            "p50": reservoir.quantile(50.0),
            "p95": reservoir.quantile(95.0),
            "p99": reservoir.quantile(99.0),
        }

    def confidence(self, metric: str) -> Dict[str, float]:
        """95% CI half-widths for :meth:`stats` (0.0 when exact)."""
        if self.count == 0:
            raise ConfigurationError("fleet sketch has no results")
        moments, reservoir = self.metrics[metric]
        population = self.seen
        out = {"mean": _Z95 * moments.sem(population=population)}
        for q, label in ((50.0, "p50"), (95.0, "p95"), (99.0, "p99")):
            lo, hi = reservoir.quantile_ci(q, population=population)
            out[label] = (hi - lo) / 2.0
        return out

    def energy_rollup(self) -> Dict[str, float]:
        """Per-sink joules across the fleet.

        Exact (the correctly rounded per-sink sum) when every stratum
        was fully sampled; otherwise each stratum's sampled total is
        scaled by its own ``seen/sampled`` inverse sampling fraction
        (post-stratified estimate).
        """
        sinks = sorted({sink for per in self.energy.values() for sink in per})
        fully = self.fully_sampled
        rollup: Dict[str, float] = {}
        for sink in sinks:
            if fully:
                acc = ExactSum()
                for stratum in sorted(self.energy):
                    total = self.energy[stratum].get(sink)
                    if total is not None:
                        acc.merge(total)
                rollup[sink] = acc.value
            else:
                estimate = 0.0
                for stratum in sorted(self.energy):
                    total = self.energy[stratum].get(sink)
                    if total is None:
                        continue
                    seen, sampled = self.strata[stratum]
                    estimate += (seen / sampled) * total.value
                rollup[sink] = estimate
        return rollup

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload; inverse of :meth:`from_dict` (the wire
        format for streamed sketch snapshots in :mod:`repro.serve`)."""
        return {
            "capacity": self.capacity,
            "seed": self.seed,
            "count": self.count,
            "metrics": {
                attr: {
                    "moments": moments.to_dict(),
                    "reservoir": reservoir.to_dict(),
                }
                for attr, (moments, reservoir) in self.metrics.items()
            },
            "energy": {
                stratum: {sink: total.to_dict() for sink, total in sorted(sinks.items())}
                for stratum, sinks in sorted(self.energy.items())
            },
            "monitors": {
                name: moments.to_dict() for name, moments in sorted(self.monitors.items())
            },
            "durations": self.durations.to_dict(),
            "strata": {
                stratum: list(counts) for stratum, counts in sorted(self.strata.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetSketch":
        out = cls(capacity=int(data["capacity"]), seed=int(data.get("seed", 0)))
        out.count = int(data.get("count", 0))
        for attr, payload in data.get("metrics", {}).items():
            out.metrics[attr] = (
                StreamingMoments.from_dict(payload["moments"]),
                ReservoirSketch.from_dict(payload["reservoir"]),
            )
        out.energy = {
            stratum: {
                sink: ExactSum.from_dict(total) for sink, total in sinks.items()
            }
            for stratum, sinks in data.get("energy", {}).items()
        }
        out.monitors = {
            name: StreamingMoments.from_dict(payload)
            for name, payload in data.get("monitors", {}).items()
        }
        out.durations = StreamingMoments.from_dict(data.get("durations", {}))
        out.strata = {
            stratum: [int(seen), int(sampled)]
            for stratum, (seen, sampled) in data.get("strata", {}).items()
        }
        return out


# ----------------------------------------------------------------------
# The sketch-backed report
# ----------------------------------------------------------------------
@dataclass
class FleetSketchReport:
    """The streaming counterpart of :class:`~repro.fleet.report.
    FleetReport`: same table shape, ±95% confidence columns, constant
    memory however large the fleet."""

    fleet_name: str
    sketch: FleetSketch

    def __len__(self) -> int:
        return self.sketch.count

    def stats(self, metric: str) -> Dict[str, float]:
        return self.sketch.stats(metric)

    def confidence(self, metric: str) -> Dict[str, float]:
        return self.sketch.confidence(metric)

    def energy_rollup(self) -> Dict[str, float]:
        return self.sketch.energy_rollup()

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {"fleet_name": self.fleet_name, "sketch": self.sketch.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetSketchReport":
        return cls(
            fleet_name=data["fleet_name"],
            sketch=FleetSketch.from_dict(data["sketch"]),
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Fixed-precision text report, byte-identical for any shard
        size, shard order, or merge tree over the same device set."""
        sketch = self.sketch
        if sketch.count == 0:
            return f"fleet {self.fleet_name}: (no results)"
        seen = sketch.seen
        span = format_duration_span(sketch.durations.minimum, sketch.durations.maximum)
        if sketch.fully_sampled:
            head = f"fleet {self.fleet_name}: {seen} devices, {span} traces"
        else:
            head = (
                f"fleet {self.fleet_name}: {seen} devices "
                f"({sketch.count} simulated, stratified sample), {span} traces"
            )
        lines = [head]
        header = (
            f"  {'metric':<16s} {'mean':>10s} {'±mean':>10s} "
            f"{'p50':>10s} {'p95':>10s} {'p99':>10s} {'±p99':>10s}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for attr, label, _scale in _METRICS:
            s = self.stats(attr)
            c = self.confidence(attr)
            lines.append(
                f"  {label:<16s} {s['mean']:>10.4f} {c['mean']:>10.4f} "
                f"{s['p50']:>10.4f} {s['p95']:>10.4f} {s['p99']:>10.4f} "
                f"{c['p99']:>10.4f}"
            )
        suffix = "" if sketch.fully_sampled else " (estimated)"
        lines.append(f"  energy by sink{suffix}:")
        rollup = self.energy_rollup()
        total = sum(rollup.values())
        for sink, joules in rollup.items():
            share = 100.0 * joules / total if total > 0 else 0.0
            lines.append(f"    {sink:<11s} {joules * 1e3:>10.4f} mJ ({share:5.1f}%)")
        lines.append("  duty by monitor:")
        for monitor_name in sorted(sketch.monitors):
            moments = sketch.monitors[monitor_name]
            lines.append(
                f"    {monitor_name:<12s} {moments.mean:>7.3f}% mean over "
                f"{moments.n} device(s)"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The shard loop
# ----------------------------------------------------------------------
@dataclass
class FleetStreamResult:
    """A finished streaming run: the sketch report plus execution
    metadata (kept off the report so renders stay byte-stable)."""

    report: FleetSketchReport
    elapsed: float
    jobs: int
    shards: int
    devices_seen: int
    devices_simulated: int
    cache_entries: int
    cache_summary: str

    @property
    def parallel(self) -> int:
        return self.jobs


def stream_fleet(
    devices: Iterable,
    *,
    name: str = "fleet",
    parallel: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    cache: Optional[CalibrationCache] = None,
    eval_engine: str = "auto",
    sample: float = 1.0,
    sample_seed: int = 0,
    capacity: int = DEFAULT_RESERVOIR_CAPACITY,
    on_shard: Optional[Callable[[int, FleetSketch], None]] = None,
    record=None,
) -> FleetStreamResult:
    """Simulate a fleet shard by shard, folding results into sketches.

    ``devices`` is any iterable of :class:`~repro.fleet.spec.
    DeviceSpec` (device ids must be unique) — pass a *generator* (e.g.
    :func:`~repro.fleet.spec.iter_synthesized_devices`) and nothing is
    ever materialized beyond one shard: specs, work items, and
    :class:`DeviceResult` lists all live for a single shard, so peak
    memory is flat in fleet size (asserted in
    ``benchmarks/bench_fleet_stream.py``).

    ``sample`` admits a seeded stratified fraction of the fleet;
    admission is per-device deterministic, so any shard size produces
    the same sample.  ``on_shard(shard_index, sketch)`` fires after
    each folded shard — :mod:`repro.serve` streams sketch snapshots
    and checks cancellation from it (each shard's pool has already
    been joined, so an exception leaves no orphan workers).

    ``record`` is the :mod:`repro.trace` seam.  The device source is an
    arbitrary iterable the header cannot re-express declaratively, so
    the recording carries the devices *in the event stream*: one
    ``device`` event (spec payload + result digest) per simulated
    device and one ``skip`` event per not-sampled device, in arrival
    order.  Pass a :class:`~repro.trace.TraceRecorder` with ``path=``
    and ``keep_events=False`` for 10^7-device runs — events stream to
    JSONL and memory stays flat.
    """
    # Late import: runner imports us lazily for run_streaming, so the
    # module-level dependency must point one way only.
    from repro.fleet.runner import _simulate_chunk

    if parallel < 1:
        raise ConfigurationError("parallel must be >= 1")
    if shard_size < 1:
        raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")
    cache = cache if cache is not None else CalibrationCache()
    sampler = StratifiedSampler(fraction=sample, seed=sample_seed)
    sketch = FleetSketch(capacity=capacity, seed=sample_seed)
    if record is not None:
        record.begin(
            "fleet",
            eval_engine,
            {
                "mode": "stream",
                "name": name,
                "shard_size": shard_size,
                "eval_engine": eval_engine,
                "sample": sample,
                "sample_seed": sample_seed,
                "capacity": capacity,
            },
        )
    worker = functools.partial(_simulate_chunk, engine=eval_engine)
    start = time.perf_counter()
    shards = 0
    iterator = iter(devices)
    with OBS.tracer.span(
        "fleet.stream", fleet=name, shard_size=shard_size, parallel=parallel
    ) as span:
        while True:
            shard = list(itertools.islice(iterator, shard_size))
            if not shard:
                break
            shards += 1
            work = []
            strata = []
            admitted = []
            for device in shard:
                stratum = device_stratum(device)
                if sampler.admit(device):
                    work.append((device, cache.get(device.calibration_key()).model))
                    strata.append(stratum)
                    admitted.append(True)
                else:
                    sketch.skip(stratum)
                    admitted.append(False)
            results: List[DeviceResult] = []
            if work:
                results = run_tasks(
                    worker,
                    work,
                    parallel=parallel,
                    chunked=True,
                    chunk="even",
                    label="fleet.stream",
                )
                for stratum, result in zip(strata, results):
                    sketch.update(result, stratum=stratum)
            if record is not None:
                # Emit in arrival order (run_tasks preserves result
                # order) so the stream is deterministic under any
                # parallelism.
                result_iter = iter(results)
                for device, ok in zip(shard, admitted):
                    if ok:
                        record.event(
                            "device",
                            device=device.device_id,
                            spec=device.to_dict(),
                            digest=payload_digest(next(result_iter).to_dict()),
                        )
                    else:
                        record.event(
                            "skip", device=device.device_id, spec=device.to_dict()
                        )
            del shard, work, strata, admitted, results
            if on_shard is not None:
                on_shard(shards, sketch)
        span.set(shards=shards, seen=sketch.seen, simulated=sketch.count)
    elapsed = time.perf_counter() - start
    if OBS.metrics.enabled:
        OBS.metrics.incr("fleet.stream_runs")
        OBS.metrics.incr("fleet.stream_shards", shards)
        OBS.metrics.incr("fleet.stream_devices", sketch.count)
        OBS.metrics.observe("fleet.stream_elapsed", elapsed)
    if record is not None:
        # Wall-clock metadata stays out: the recording is a pure
        # function of the device stream and the knobs above.
        record.finish(
            {"report": FleetSketchReport(fleet_name=name, sketch=sketch).to_dict()}
        )
    return FleetStreamResult(
        report=FleetSketchReport(fleet_name=name, sketch=sketch),
        elapsed=elapsed,
        jobs=parallel,
        shards=shards,
        devices_seen=sketch.seen,
        devices_simulated=sketch.count,
        cache_entries=len(cache),
        cache_summary=cache.stats.summary(),
    )
