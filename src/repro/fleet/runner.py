"""Parallel fleet execution.

:class:`FleetRunner` turns a :class:`~repro.fleet.spec.FleetSpec` into a
:class:`~repro.fleet.report.FleetReport`:

1. resolve every unique calibration key through the shared
   :class:`~repro.fleet.cache.CalibrationCache` *in the parent process*
   (devices sharing a tech node + monitor design enroll exactly once);
2. fan the per-device work out through the
   :mod:`repro.exec` backbone when ``parallel > 1``, or run the same
   code path serially when ``parallel <= 1`` (the deterministic mode
   tests use) — either way :func:`repro.exec.run_tasks` owns chunking,
   worker-count resolution, and worker metrics merging;
3. aggregate results in device-id order, so serial and parallel runs
   produce byte-identical reports.

The worker functions are module-level and their payloads are all frozen
dataclasses of primitives, which is what makes the fan-out picklable.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.batch import ENGINES as EVAL_ENGINES
from repro.batch import (
    MIN_RUN_WINDOW_V as _MIN_RUN_WINDOW_V,
    Scenario,
    apply_policy_margin,
    evaluate_many,
)
from repro.errors import ConfigurationError
from repro.exec import run_tasks
from repro.fleet.cache import CalibrationCache, CalibrationRecord
from repro.fleet.report import DeviceResult, FleetReport
from repro.fleet.spec import DeviceSpec, FleetSpec
from repro.harvest.fast import FastIntermittentSimulator
from repro.harvest.monitors import MonitorModel
from repro.harvest.panel import SolarPanel
from repro.harvest.simulator import IntermittentSimulator
from repro.obs import OBS
from repro.trace.format import payload_digest

_ENGINES = {
    "fast": FastIntermittentSimulator,
    "reference": IntermittentSimulator,
}

# _MIN_RUN_WINDOW_V (imported above) keeps the deployed threshold
# strictly below turn-on after policy padding; the clamp itself lives
# in :func:`repro.batch.apply_policy_margin`, shared with Scenario.


def _simulate_device(work: Tuple[DeviceSpec, MonitorModel]) -> DeviceResult:
    """Replay one device's trace.  Top-level so executors can pickle it."""
    device, monitor = work
    engine_cls = _ENGINES[device.engine]
    simulator = engine_cls(
        monitor,
        panel=SolarPanel(area_cm2=device.panel_area_cm2),
        capacitance=device.capacitance,
    )
    # Shared with Scenario.build_simulator: padding never lowers the
    # threshold below its calibrated value, even on tight run windows.
    apply_policy_margin(simulator, device.policy_margin())
    report = simulator.run(device.build_trace(), dt=device.dt)
    return DeviceResult.from_report(
        device_id=device.device_id,
        policy=device.policy,
        engine=device.engine,
        report=report,
    )


def simulate_devices(
    work: List[Tuple[DeviceSpec, MonitorModel]], engine: str = "auto"
) -> List[DeviceResult]:
    """Replay many devices at once through the unified evaluator.

    Builds one :class:`~repro.batch.Scenario` per device and hands the
    lot to :func:`repro.batch.evaluate_many`; with ``engine="auto"``
    large homogeneous chunks vectorize through the numpy kernel while
    small or reference-engine chunks fall back to the scalar engines —
    either way the results are bit-identical to the one-device scalar
    path (the kernel's equivalence contract).
    """
    scenarios = [Scenario.from_device(device, monitor) for device, monitor in work]
    reports = evaluate_many(scenarios, engine=engine)
    return [
        DeviceResult.from_report(
            device_id=device.device_id,
            policy=device.policy,
            engine=device.engine,
            report=report,
        )
        for (device, _monitor), report in zip(work, reports)
    ]


def _simulate_chunk(work, engine: str = "auto") -> List[DeviceResult]:
    """Chunk worker for the parallel batch path (runs under
    :func:`repro.exec.run_tasks`; top-level so it pickles)."""
    return simulate_devices(work, engine=engine)


def _simulate_device_obs(work: Tuple[DeviceSpec, MonitorModel]) -> DeviceResult:
    """Observability-aware worker: same simulation, plus telemetry.

    Runs under :func:`repro.exec.run_tasks`, which re-arms tracing and
    metrics inside the worker and merges the task-local metrics snapshot
    back into the parent — the span and counters here are never dropped,
    and aggregation stays double-count-free regardless of how the
    executor schedules or reuses workers.
    """
    device, monitor = work
    start = time.perf_counter()
    with OBS.tracer.span(
        "fleet.device",
        device=device.device_id,
        engine=device.engine,
        policy=device.policy,
    ):
        result = _simulate_device((device, monitor))
    OBS.metrics.incr("fleet.devices")
    OBS.metrics.observe("fleet.device_seconds", time.perf_counter() - start)
    return result


@dataclass
class FleetRunResult:
    """A finished run: the aggregate report plus execution metadata.

    Metadata (wall time, worker count, cache stats) lives here rather
    than on the report so that ``report.render()`` stays byte-identical
    between serial and parallel executions of the same fleet.
    """

    report: FleetReport
    elapsed: float
    jobs: int
    cache_entries: int
    cache_summary: str

    @property
    def parallel(self) -> int:
        """The requested worker count (alias of the ``jobs`` field)."""
        return self.jobs


class FleetRunner:
    """Execute a fleet, serially or across worker processes."""

    def __init__(
        self,
        fleet: FleetSpec,
        parallel: int = 1,
        cache: Optional[CalibrationCache] = None,
        eval_engine: str = "auto",
        characterize_engine: str = "auto",
    ):
        if eval_engine not in EVAL_ENGINES:
            raise ConfigurationError(
                f"unknown eval engine {eval_engine!r}; choose from {EVAL_ENGINES}"
            )
        if parallel < 1:
            raise ConfigurationError("parallel must be >= 1")
        self.fleet = fleet
        self.parallel = parallel
        # characterize_engine routes enrollment divider cross-checks
        # through characterize_many(engine=) — surrogate-aware when a
        # certified model covers the fleet's tech cards.  A caller's own
        # cache keeps its configured engine.
        self.cache = (
            cache
            if cache is not None
            else CalibrationCache(characterize_engine=characterize_engine)
        )
        self.eval_engine = eval_engine
        self.characterize_engine = characterize_engine

    # ------------------------------------------------------------------
    def resolve_calibrations(self) -> Dict[Tuple, CalibrationRecord]:
        """Enroll every unique monitor design once, in the parent."""
        return {key: self.cache.get(key) for key in self.fleet.calibration_keys()}

    def _work_items(self) -> List[Tuple[DeviceSpec, MonitorModel]]:
        if self.cache.enabled:
            records = self.resolve_calibrations()
            return [
                (device, records[device.calibration_key()].model)
                for device in self.fleet.devices
            ]
        # Cache-off baseline: every device pays a cold enrollment, the
        # way the single-device simulator API does today.
        return [
            (device, self.cache.get(device.calibration_key()).model)
            for device in self.fleet.devices
        ]

    def run(self, record=None) -> FleetRunResult:
        """Execute the fleet.

        ``record`` is the :mod:`repro.trace` seam: the run becomes one
        ``fleet`` recording whose header embeds the full declarative
        fleet spec, with one ``device`` event per device (in device
        order, parallel or not — results are order-preserved) carrying
        the digest of that device's result payload.  Any single device
        can then be replayed in isolation from the recording alone
        (``repro replay <trace> --device ID``).
        """
        start = time.perf_counter()
        if not OBS.enabled:
            # Observability off: chunked batch evaluation — devices
            # sharing an engine vectorize through the lockstep kernel.
            # (Observability runs keep the per-device scalar workers
            # below, which emit one fleet.device span per device; batch
            # and scalar results are bit-identical, so the two paths
            # produce the same report.)
            work = self._work_items()
            results = self._execute_batched(work)
            return self._finish(results, start, record=record)
        hits0, misses0 = self.cache.stats.hits, self.cache.stats.misses
        with OBS.tracer.span(
            "fleet.run",
            fleet=self.fleet.name,
            devices=len(self.fleet.devices),
            parallel=self.parallel,
        ) as span:
            work = self._work_items()
            results = self._execute(_simulate_device_obs, work)
            run_result = self._finish(results, start, record=record)
            span.set(
                elapsed=run_result.elapsed,
                cache_hits=self.cache.stats.hits - hits0,
                cache_misses=self.cache.stats.misses - misses0,
            )
        OBS.metrics.incr("fleet.runs")
        OBS.metrics.observe("fleet.elapsed", run_result.elapsed)
        OBS.metrics.incr("fleet.cache_hits", self.cache.stats.hits - hits0)
        OBS.metrics.incr("fleet.cache_misses", self.cache.stats.misses - misses0)
        return run_result

    def _execute(self, worker, work: List) -> List:
        # Scalar per-device path: many small chunks (a quarter of an
        # even split per worker) so the pool load-balances ragged
        # device runtimes; the backbone preserves result order and
        # merges each chunk's metrics snapshot.
        if self.parallel <= 1 or len(work) <= 1:
            chunk: object = "even"
        else:
            chunk = max(1, len(work) // (4 * self.parallel))
        return run_tasks(
            worker,
            work,
            parallel=self.parallel,
            chunk=chunk,
            label="fleet.devices",
        )

    def run_streaming(
        self,
        shard_size: Optional[int] = None,
        sample: float = 1.0,
        sample_seed: int = 0,
        capacity: Optional[int] = None,
        on_shard=None,
        record=None,
    ):
        """Execute the fleet shard by shard into mergeable sketches.

        The constant-memory counterpart of :meth:`run`: results are
        folded into a :class:`~repro.fleet.stream.FleetSketch` one
        shard at a time and never accumulated, so memory is flat in
        fleet size.  Returns a :class:`~repro.fleet.stream.
        FleetStreamResult` whose report's stats equal :meth:`run`'s
        exactly for fleets that fit the percentile reservoir (mean and
        energy totals are exact at *any* size).  See
        :func:`repro.fleet.stream.stream_fleet` for the knobs.
        """
        # Late import: stream builds on this module, so the dependency
        # must point one way at import time.
        from repro.fleet import stream

        kwargs = {}
        if shard_size is not None:
            kwargs["shard_size"] = shard_size
        if capacity is not None:
            kwargs["capacity"] = capacity
        return stream.stream_fleet(
            self.fleet.devices,
            name=self.fleet.name,
            parallel=self.parallel,
            cache=self.cache,
            eval_engine=self.eval_engine,
            sample=sample,
            sample_seed=sample_seed,
            on_shard=on_shard,
            record=record,
            **kwargs,
        )

    def _execute_batched(self, work: List) -> List[DeviceResult]:
        # One contiguous chunk per worker (not the scalar path's small
        # chunks): the kernel's throughput grows with lane count, so
        # each worker should see the biggest batch load-balancing allows.
        return run_tasks(
            functools.partial(_simulate_chunk, engine=self.eval_engine),
            work,
            parallel=self.parallel,
            chunked=True,
            chunk="even",
            label="fleet.batched",
        )

    def _finish(
        self, results: List[DeviceResult], start: float, record=None
    ) -> FleetRunResult:
        report = FleetReport(fleet_name=self.fleet.name, results=results)
        if record is not None:
            record_fleet_run(
                record, self.fleet, self.eval_engine, results, report=report
            )
        elapsed = time.perf_counter() - start
        return FleetRunResult(
            report=report,
            elapsed=elapsed,
            jobs=self.parallel,
            cache_entries=len(self.cache),
            cache_summary=self.cache.stats.summary(),
        )


def record_fleet_run(
    record,
    fleet: FleetSpec,
    eval_engine: str,
    results: List[DeviceResult],
    report: Optional[FleetReport] = None,
) -> FleetReport:
    """Write one ``mode: run`` fleet recording from materialized results.

    The single source of truth for the fleet-run recording layout —
    shared by :meth:`FleetRunner.run` and the serve ``fleet`` handler so
    the two produce byte-identical recordings for the same fleet.
    ``results`` must be in ``fleet.devices`` order.  Wall-clock metadata
    stays out: the recording is a pure function of the fleet spec.
    """
    if report is None:
        report = FleetReport(fleet_name=fleet.name, results=results)
    record.begin(
        "fleet",
        eval_engine,
        {"mode": "run", "fleet": fleet.to_dict(), "eval_engine": eval_engine},
    )
    for device, result in zip(fleet.devices, results):
        record.event(
            "device",
            device=device.device_id,
            digest=payload_digest(result.to_dict()),
            checkpoints=result.checkpoints,
            power_failures=result.power_failures,
        )
    record.finish({"report": report.to_dict()})
    return report


def run_fleet(
    fleet: FleetSpec,
    parallel: int = 1,
    cache: Optional[CalibrationCache] = None,
    eval_engine: str = "auto",
    characterize_engine: str = "auto",
) -> FleetRunResult:
    """Convenience wrapper: build a runner and run it."""
    return FleetRunner(
        fleet,
        parallel=parallel,
        cache=cache,
        eval_engine=eval_engine,
        characterize_engine=characterize_engine,
    ).run()
