"""Parallel fleet execution.

:class:`FleetRunner` turns a :class:`~repro.fleet.spec.FleetSpec` into a
:class:`~repro.fleet.report.FleetReport`:

1. resolve every unique calibration key through the shared
   :class:`~repro.fleet.cache.CalibrationCache` *in the parent process*
   (devices sharing a tech node + monitor design enroll exactly once);
2. fan the per-device work out over a ``ProcessPoolExecutor`` when
   ``jobs > 1``, or run the same code path serially when ``jobs <= 1``
   (the deterministic mode tests use);
3. aggregate results in device-id order, so serial and parallel runs
   produce byte-identical reports.

The worker function is module-level and its payload is all frozen
dataclasses of primitives, which is what makes the fan-out picklable.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.batch import ENGINES as EVAL_ENGINES
from repro.batch import Scenario, evaluate_many
from repro.errors import ConfigurationError
from repro.fleet.cache import CalibrationCache, CalibrationRecord
from repro.fleet.report import DeviceResult, FleetReport
from repro.fleet.spec import DeviceSpec, FleetSpec
from repro.harvest.fast import FastIntermittentSimulator
from repro.harvest.monitors import MonitorModel
from repro.harvest.panel import SolarPanel
from repro.harvest.simulator import IntermittentSimulator
from repro.obs import OBS, Metrics, ObsSpec, configure_from_spec
from repro.obs import spec as obs_spec

_ENGINES = {
    "fast": FastIntermittentSimulator,
    "reference": IntermittentSimulator,
}

#: Keep the deployed threshold strictly below turn-on after policy
#: padding; without head-room the device would checkpoint at boot.
_MIN_RUN_WINDOW_V = 0.05


def simulate_device(work: Tuple[DeviceSpec, MonitorModel]) -> DeviceResult:
    """Deprecated one-device entry point (kept for one release).

    Use :func:`simulate_devices` (which batches through
    :func:`repro.api.evaluate_many`) or :class:`FleetRunner` directly.
    """
    warnings.warn(
        "repro.fleet.runner.simulate_device is deprecated; use "
        "simulate_devices or FleetRunner (batch-capable)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _simulate_device(work)


def _simulate_device(work: Tuple[DeviceSpec, MonitorModel]) -> DeviceResult:
    """Replay one device's trace.  Top-level so executors can pickle it."""
    device, monitor = work
    engine_cls = _ENGINES[device.engine]
    simulator = engine_cls(
        monitor,
        panel=SolarPanel(area_cm2=device.panel_area_cm2),
        capacitance=device.capacitance,
    )
    margin = device.policy_margin()
    if margin > 0.0:
        simulator.v_ckpt = min(
            simulator.v_ckpt + margin, simulator.v_on - _MIN_RUN_WINDOW_V
        )
    report = simulator.run(device.build_trace(), dt=device.dt)
    return DeviceResult.from_report(
        device_id=device.device_id,
        policy=device.policy,
        engine=device.engine,
        report=report,
    )


def simulate_devices(
    work: List[Tuple[DeviceSpec, MonitorModel]], engine: str = "auto"
) -> List[DeviceResult]:
    """Replay many devices at once through the unified evaluator.

    Builds one :class:`~repro.batch.Scenario` per device and hands the
    lot to :func:`repro.batch.evaluate_many`; with ``engine="auto"``
    large homogeneous chunks vectorize through the numpy kernel while
    small or reference-engine chunks fall back to the scalar engines —
    either way the results are bit-identical to :func:`simulate_device`
    (the kernel's equivalence contract).
    """
    scenarios = [Scenario.from_device(device, monitor) for device, monitor in work]
    reports = evaluate_many(scenarios, engine=engine)
    return [
        DeviceResult.from_report(
            device_id=device.device_id,
            policy=device.policy,
            engine=device.engine,
            report=report,
        )
        for (device, _monitor), report in zip(work, reports)
    ]


def _simulate_chunk(payload) -> List[DeviceResult]:
    """Picklable chunk worker for the parallel batch path."""
    work, engine = payload
    return simulate_devices(work, engine=engine)


def _simulate_device_obs(
    work: Tuple[DeviceSpec, MonitorModel, ObsSpec]
) -> Tuple[DeviceResult, dict]:
    """Observability-aware worker: same simulation, plus telemetry.

    Configures obs in the worker (idempotent, so the serial path and
    fork-started workers pay nothing), swaps in a *task-local* Metrics
    so the returned snapshot covers exactly this device — the parent
    merges snapshots, which keeps counter aggregation double-count-free
    regardless of how the executor schedules or reuses workers.
    """
    device, monitor, spec = work
    configure_from_spec(spec)
    task_metrics = Metrics(enabled=spec.metrics_enabled)
    saved = OBS.metrics
    OBS.metrics = task_metrics
    try:
        start = time.perf_counter()
        with OBS.tracer.span(
            "fleet.device",
            device=device.device_id,
            engine=device.engine,
            policy=device.policy,
        ):
            result = _simulate_device((device, monitor))
        task_metrics.incr("fleet.devices")
        task_metrics.observe("fleet.device_seconds", time.perf_counter() - start)
        return result, task_metrics.snapshot()
    finally:
        OBS.metrics = saved


@dataclass
class FleetRunResult:
    """A finished run: the aggregate report plus execution metadata.

    Metadata (wall time, job count, cache stats) lives here rather than
    on the report so that ``report.render()`` stays byte-identical
    between serial and parallel executions of the same fleet.
    """

    report: FleetReport
    elapsed: float
    jobs: int
    cache_entries: int
    cache_summary: str


class FleetRunner:
    """Execute a fleet, serially or across worker processes."""

    def __init__(
        self,
        fleet: FleetSpec,
        jobs: int = 1,
        cache: Optional[CalibrationCache] = None,
        eval_engine: str = "auto",
    ):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if eval_engine not in EVAL_ENGINES:
            raise ConfigurationError(
                f"unknown eval engine {eval_engine!r}; choose from {EVAL_ENGINES}"
            )
        self.fleet = fleet
        self.jobs = jobs
        self.cache = cache if cache is not None else CalibrationCache()
        self.eval_engine = eval_engine

    # ------------------------------------------------------------------
    def resolve_calibrations(self) -> Dict[Tuple, CalibrationRecord]:
        """Enroll every unique monitor design once, in the parent."""
        return {key: self.cache.get(key) for key in self.fleet.calibration_keys()}

    def _work_items(self) -> List[Tuple[DeviceSpec, MonitorModel]]:
        if self.cache.enabled:
            records = self.resolve_calibrations()
            return [
                (device, records[device.calibration_key()].model)
                for device in self.fleet.devices
            ]
        # Cache-off baseline: every device pays a cold enrollment, the
        # way the single-device simulator API does today.
        return [
            (device, self.cache.get(device.calibration_key()).model)
            for device in self.fleet.devices
        ]

    def run(self) -> FleetRunResult:
        start = time.perf_counter()
        if not OBS.enabled:
            # Observability off: chunked batch evaluation — devices
            # sharing an engine vectorize through the lockstep kernel.
            # (Observability runs keep the per-device scalar workers
            # below, which emit one fleet.device span per device; batch
            # and scalar results are bit-identical, so the two paths
            # produce the same report.)
            work = self._work_items()
            results = self._execute_batched(work)
            return self._finish(results, start)
        hits0, misses0 = self.cache.stats.hits, self.cache.stats.misses
        with OBS.tracer.span(
            "fleet.run",
            fleet=self.fleet.name,
            devices=len(self.fleet.devices),
            jobs=self.jobs,
        ) as span:
            work = self._work_items()
            spec = obs_spec()
            payload = [(device, monitor, spec) for device, monitor in work]
            outcomes = self._execute(_simulate_device_obs, payload)
            results = [result for result, _snapshot in outcomes]
            for _result, snapshot in outcomes:
                OBS.metrics.merge(snapshot)
            run_result = self._finish(results, start)
            span.set(
                elapsed=run_result.elapsed,
                cache_hits=self.cache.stats.hits - hits0,
                cache_misses=self.cache.stats.misses - misses0,
            )
        OBS.metrics.incr("fleet.runs")
        OBS.metrics.observe("fleet.elapsed", run_result.elapsed)
        OBS.metrics.incr("fleet.cache_hits", self.cache.stats.hits - hits0)
        OBS.metrics.incr("fleet.cache_misses", self.cache.stats.misses - misses0)
        return run_result

    def _execute(self, worker, work: List) -> List:
        if self.jobs <= 1 or len(work) <= 1:
            return [worker(item) for item in work]
        chunksize = max(1, len(work) // (4 * self.jobs))
        with ProcessPoolExecutor(max_workers=self.jobs) as executor:
            return list(executor.map(worker, work, chunksize=chunksize))

    def _execute_batched(self, work: List) -> List[DeviceResult]:
        if self.jobs <= 1 or len(work) <= 1:
            return simulate_devices(work, engine=self.eval_engine)
        # One contiguous chunk per worker (not the scalar path's small
        # chunksize): the kernel's throughput grows with lane count, so
        # each worker should see the biggest batch load-balancing allows.
        jobs = min(self.jobs, len(work))
        size = -(-len(work) // jobs)
        chunks = [work[i : i + size] for i in range(0, len(work), size)]
        with ProcessPoolExecutor(max_workers=jobs) as executor:
            parts = list(
                executor.map(_simulate_chunk, [(c, self.eval_engine) for c in chunks])
            )
        return [result for part in parts for result in part]

    def _finish(self, results: List[DeviceResult], start: float) -> FleetRunResult:
        report = FleetReport(fleet_name=self.fleet.name, results=results)
        elapsed = time.perf_counter() - start
        return FleetRunResult(
            report=report,
            elapsed=elapsed,
            jobs=self.jobs,
            cache_entries=len(self.cache),
            cache_summary=self.cache.stats.summary(),
        )


def run_fleet(
    fleet: FleetSpec,
    jobs: int = 1,
    cache: Optional[CalibrationCache] = None,
    eval_engine: str = "auto",
) -> FleetRunResult:
    """Convenience wrapper: build a runner and run it."""
    return FleetRunner(fleet, jobs=jobs, cache=cache, eval_engine=eval_engine).run()
