"""Fleet-scale deployment simulation (ubiquity, taken literally).

The paper argues Failure Sentinels is cheap enough to put in *every*
device; this package simulates what that means operationally.  A
:class:`FleetSpec` describes N heterogeneous devices (technology node,
monitor design, panel, capacitor, seeded irradiance trace, runtime
policy); :class:`FleetRunner` executes them serially or across worker
processes, sharing one :class:`CalibrationCache` so devices with the
same monitor design enroll once; :class:`FleetReport` aggregates the
duty-cycle / checkpoint / power-failure distributions; and
:class:`DeploymentPlanner` closes the loop with :mod:`repro.dse`,
assigning each site the cheapest Pareto-optimal design that meets its
accuracy and sampling targets.

Entry points: ``python -m repro fleet`` on the command line, the
``ext_fleet`` experiment, and :func:`run_fleet` from code.
"""

from repro.fleet.cache import CalibrationCache, CalibrationRecord, build_record
from repro.fleet.planner import DeploymentPlanner, SiteAssignment, SiteRequirement
from repro.fleet.report import DeviceResult, FleetReport, percentile
from repro.fleet.runner import (
    FleetRunner,
    FleetRunResult,
    run_fleet,
    simulate_device,
    simulate_devices,
)
from repro.fleet.spec import (
    DeviceSpec,
    ENGINES,
    FleetSpec,
    MONITOR_KINDS,
    POLICY_MARGINS,
    TRACE_GENERATORS,
    synthesize_fleet,
)

__all__ = [
    "CalibrationCache",
    "CalibrationRecord",
    "build_record",
    "DeploymentPlanner",
    "SiteAssignment",
    "SiteRequirement",
    "DeviceResult",
    "FleetReport",
    "percentile",
    "FleetRunner",
    "FleetRunResult",
    "run_fleet",
    "simulate_device",
    "simulate_devices",
    "DeviceSpec",
    "ENGINES",
    "FleetSpec",
    "MONITOR_KINDS",
    "POLICY_MARGINS",
    "TRACE_GENERATORS",
    "synthesize_fleet",
]
