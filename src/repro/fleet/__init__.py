"""Fleet-scale deployment simulation (ubiquity, taken literally).

The paper argues Failure Sentinels is cheap enough to put in *every*
device; this package simulates what that means operationally.  A
:class:`FleetSpec` describes N heterogeneous devices (technology node,
monitor design, panel, capacitor, seeded irradiance trace, runtime
policy); :class:`FleetRunner` executes them serially or across worker
processes, sharing one :class:`CalibrationCache` so devices with the
same monitor design enroll once; :class:`FleetReport` aggregates the
duty-cycle / checkpoint / power-failure distributions; and
:class:`DeploymentPlanner` closes the loop with :mod:`repro.dse`,
assigning each site the cheapest Pareto-optimal design that meets its
accuracy and sampling targets.  At deployment scale (10^6+ devices),
:func:`stream_fleet` / :meth:`FleetRunner.run_streaming` execute the
fleet shard by shard into mergeable sketches
(:class:`FleetSketchReport`) with memory flat in fleet size — see
``docs/fleet_scale.md``.

Entry points: ``python -m repro fleet`` (``--stream`` for the sharded
mode) on the command line, the ``ext_fleet`` experiment, and
:func:`run_fleet` / :func:`stream_fleet` from code.
"""

from repro.fleet.cache import CalibrationCache, CalibrationRecord, build_record
from repro.fleet.planner import DeploymentPlanner, SiteAssignment, SiteRequirement
from repro.fleet.report import DeviceResult, FleetReport, percentile
from repro.fleet.runner import (
    FleetRunner,
    FleetRunResult,
    run_fleet,
    simulate_devices,
)
from repro.fleet.spec import (
    DeviceSpec,
    ENGINES,
    FleetSpec,
    MONITOR_KINDS,
    POLICY_MARGINS,
    TRACE_GENERATORS,
    iter_synthesized_devices,
    synthesize_fleet,
)
from repro.fleet.stream import (
    FleetSketch,
    FleetSketchReport,
    FleetStreamResult,
    ReservoirSketch,
    StratifiedSampler,
    StreamingMoments,
    stream_fleet,
)

__all__ = [
    "CalibrationCache",
    "CalibrationRecord",
    "build_record",
    "DeploymentPlanner",
    "SiteAssignment",
    "SiteRequirement",
    "DeviceResult",
    "FleetReport",
    "percentile",
    "FleetRunner",
    "FleetRunResult",
    "run_fleet",
    "simulate_devices",
    "DeviceSpec",
    "ENGINES",
    "FleetSpec",
    "MONITOR_KINDS",
    "POLICY_MARGINS",
    "TRACE_GENERATORS",
    "iter_synthesized_devices",
    "synthesize_fleet",
    "FleetSketch",
    "FleetSketchReport",
    "FleetStreamResult",
    "ReservoirSketch",
    "StratifiedSampler",
    "StreamingMoments",
    "stream_fleet",
]
