"""Shared calibration / monitor-curve cache.

Building a monitor model is the fleet's per-device hot path: a Failure
Sentinels instance runs RO frequency sweeps for its error budget and an
enrollment sweep for its count-to-voltage curve (~20 ms), which rivals
the cost of actually simulating a 300 s trace on the fast engine.  A
fleet of hundreds of devices typically deploys a handful of monitor
designs, so the enrollment work is massively redundant.

:class:`CalibrationCache` memoizes the finished
:class:`~repro.fleet.cache.CalibrationRecord` per
``(technology, monitor kind, design parameters)`` key.  Process safety
comes from *where* the cache sits, not from locks: the runner resolves
every unique key in the parent process before fanning out, and ships
workers the finished (frozen, picklable) records.  Workers never write
the cache, so parallel execution cannot race it.  An optional disk
layer persists records across runs with atomic ``os.replace`` writes,
which are safe against concurrent fleet runs on the same directory.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analog.divider import VoltageDivider
from repro.core.config import FSConfig
from repro.core.monitor import FailureSentinels
from repro.errors import ConfigurationError
from repro.obs import OBS
from repro.spice.charlib import DividerSweep, characterize_many
from repro.harvest.monitors import (
    ADCMonitor,
    ComparatorMonitor,
    IdealMonitor,
    MonitorModel,
    fs_high_performance_config,
    fs_low_power_config,
)
from repro.tech import get_technology

#: Supply voltage at which duty-cycled mean current is quoted (matches
#: :func:`repro.harvest.monitors.FSMonitor`'s default).
V_TYPICAL = 3.0


@dataclass(frozen=True)
class CalibrationRecord:
    """Everything enrollment produces, frozen and picklable.

    ``curve`` is the enrolled count-to-voltage table as plain tuples —
    the factory characterization a real deployment would burn into NVM.
    Parameter-free monitors (ideal, comparator, ADC) carry an empty
    curve; their :class:`MonitorModel` is still worth caching because
    the key unifies the runner's resolution path.
    """

    key: Tuple
    model: MonitorModel
    curve: Tuple[Tuple[int, float], ...] = ()

    def curve_voltages(self) -> Tuple[float, ...]:
        return tuple(v for _count, v in self.curve)


def _enrollment_crosscheck(config: FSConfig, engine: str = "auto") -> None:
    """Device-level sanity probe on a cold enrollment.

    Characterizes the divider netlist through the shared
    :mod:`repro.spice.charlib` cache and compares the tap voltage
    against the analytic model enrollment used — a fleet deploying one
    monitor design on one technology pays for exactly one solve, ever.
    Runs only when observability is on — it is a data-quality check
    riding the trace, not part of enrollment itself — and never fails
    the enrollment: a non-converged solve is itself a finding worth
    recording.  ``engine`` follows ``characterize_many``: with a
    certified surrogate covering the divider (e.g. after
    :func:`~repro.spice.surrogate.fit_variation_family` enrollment
    warm-up), ``"auto"`` answers in microseconds per device.
    """
    if not OBS.enabled:
        return
    # Unit upper width: the widened production divider intentionally
    # sits off the ideal ratio (enrollment absorbs that), so the
    # ratio-vs-netlist comparison is only meaningful at width 1.
    divider = VoltageDivider(config.tech, upper_width=1.0)
    sweep = DividerSweep(
        tech=config.tech,
        voltages=(V_TYPICAL,),
        tap=divider.tap,
        total=divider.total,
        upper_width=divider.upper_width,
    )
    v_analytic = divider.nominal_output(V_TYPICAL)
    with OBS.tracer.span("spice.crosscheck", tech=config.tech.name) as span:
        [result] = characterize_many([sweep], engine=engine)
        v_spice = result.tap[0]
        if v_spice <= 0.0:
            # charlib records a non-converged point as a zero tap.
            span.set(converged=False)
            OBS.metrics.incr("fleet.crosscheck_failures")
            return
        error = abs(v_spice - v_analytic) / max(v_analytic, 1e-12)
        span.set(v_spice=v_spice, v_analytic=v_analytic, rel_error=error)
    OBS.metrics.observe("fleet.crosscheck_rel_error", error)


def build_record(key: Tuple, characterize_engine: str = "auto") -> CalibrationRecord:
    """Cold enrollment: build the record for a calibration key.

    ``characterize_engine`` routes the enrollment cross-check's divider
    characterization (see :func:`_enrollment_crosscheck`).
    """
    tech_name, kind, params = key
    if kind == "ideal":
        return CalibrationRecord(key=key, model=IdealMonitor())
    if kind == "comparator":
        return CalibrationRecord(key=key, model=ComparatorMonitor())
    if kind == "adc":
        return CalibrationRecord(key=key, model=ADCMonitor())

    if kind == "fs_lp":
        config = fs_low_power_config()
        name = "FS (LP)"
    elif kind == "fs_hp":
        config = fs_high_performance_config()
        name = "FS (HP)"
    elif kind == "fs":
        config = FSConfig(tech=get_technology(tech_name), **dict(params))
        name = f"FS({tech_name}, {config.f_sample / 1e3:.0f}kHz)"
    else:
        raise ConfigurationError(f"unknown monitor kind {kind!r}")
    if kind in ("fs_lp", "fs_hp") and tech_name != config.tech.name:
        # The pinned Table IV corners are 90 nm designs; a different
        # node means a different card, same shape.
        config = FSConfig(
            tech=get_technology(tech_name),
            ro_length=config.ro_length,
            counter_bits=config.counter_bits,
            t_enable=config.t_enable,
            f_sample=config.f_sample,
            nvm_entries=config.nvm_entries,
            entry_bits=config.entry_bits,
        )

    with OBS.tracer.span("fleet.enroll", kind=kind, tech=tech_name) as span:
        fs = FailureSentinels(config)
        table = fs.enroll()
        span.set(entries=len(table.points))
        _enrollment_crosscheck(config, engine=characterize_engine)
    OBS.metrics.incr("fleet.enrollments")
    model = MonitorModel(
        name=name,
        current=fs.mean_current(V_TYPICAL),
        resolution=fs.resolution_volts(),
        sample_rate=config.f_sample,
    )
    curve = tuple((p.count, p.voltage) for p in table.points)
    return CalibrationRecord(key=key, model=model, curve=curve)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    def summary(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.disk_hits} from disk"


class CalibrationCache:
    """Memoized calibration records, optionally persisted to disk.

    ``enabled=False`` turns every lookup into a cold build — the
    cache-off baseline the fleet benchmark measures against.
    ``characterize_engine`` routes cold enrollments' divider
    cross-checks through ``characterize_many(engine=)``.
    """

    def __init__(
        self,
        enabled: bool = True,
        cache_dir: Optional[str] = None,
        characterize_engine: str = "auto",
    ):
        self.enabled = enabled
        self.cache_dir = cache_dir
        self.characterize_engine = characterize_engine
        self._records: Dict[Tuple, CalibrationRecord] = {}
        self.stats = CacheStats()
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------
    def get(self, key: Tuple) -> CalibrationRecord:
        """The record for ``key`` — memoized, disk-backed, or cold."""
        if not self.enabled:
            self.stats.misses += 1
            return build_record(key, characterize_engine=self.characterize_engine)
        record = self._records.get(key)
        if record is not None:
            self.stats.hits += 1
            return record
        record = self._load_disk(key)
        if record is not None:
            self.stats.disk_hits += 1
        else:
            self.stats.misses += 1
            record = build_record(key, characterize_engine=self.characterize_engine)
            self._store_disk(key, record)
        self._records[key] = record
        return record

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    def _path(self, key: Tuple) -> Optional[str]:
        if not self.cache_dir:
            return None
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:24]
        return os.path.join(self.cache_dir, f"calibration-{digest}.pkl")

    def _load_disk(self, key: Tuple) -> Optional[CalibrationRecord]:
        path = self._path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError):
            return None
        if not isinstance(record, CalibrationRecord) or record.key != key:
            return None
        return record

    def _store_disk(self, key: Tuple, record: CalibrationRecord) -> None:
        path = self._path(key)
        if path is None:
            return
        # Atomic publish: concurrent writers of the same key both write
        # identical bytes, so last-rename-wins is harmless.
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(record, handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
