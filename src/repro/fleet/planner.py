"""Deployment planning: match monitor designs to deployment sites.

The design-space exploration (:mod:`repro.dse`) answers "what monitor
designs are Pareto-optimal"; a fleet operator asks the follow-up:
*which of those designs does each site actually get?*  Sites differ —
a storefront mote can tolerate a coarse 50 mV monitor, a deep-shade
mote needs finer granularity and a faster sample rate to survive its
thin energy margins — and over-provisioning every site with the finest
design wastes exactly the microamps the paper is trying to save.

:class:`DeploymentPlanner` consumes the Pareto front (a shared grid
sweep, computed once per technology and reused across sites) and
assigns each :class:`SiteRequirement` the *cheapest* design — lowest
mean current — that meets the site's accuracy and sampling targets.
:meth:`DeploymentPlanner.to_fleet` then materializes the plan as a
:class:`~repro.fleet.spec.FleetSpec` ready for the runner, closing the
loop from exploration to fleet simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import FSConfig
from repro.dse.grid import grid_explore
from repro.dse.objectives import Evaluation, PerformanceModel
from repro.dse.space import DesignSpace
from repro.errors import ConfigurationError
from repro.fleet.spec import DeviceSpec, FleetSpec
from repro.tech import TECH_90NM
from repro.tech.ptm import TechnologyCard


@dataclass(frozen=True)
class SiteRequirement:
    """One deployment site's monitor requirements and physical context."""

    name: str
    granularity_max: float = 0.050   # V of measurement error the site tolerates
    f_sample_min: float = 1e3        # Hz the runtime needs near the threshold
    current_max: float = 5e-6        # A budget for the monitor itself
    trace_scale: float = 1.0         # site irradiance relative to nominal
    trace_seed: int = 0
    panel_area_cm2: float = 5.0
    capacitance: float = 47e-6
    policy: str = "jit"

    def __post_init__(self) -> None:
        if self.granularity_max <= 0 or self.f_sample_min <= 0 or self.current_max <= 0:
            raise ConfigurationError("site requirement limits must be positive")

    def admits(self, evaluation: Evaluation) -> bool:
        return (
            evaluation.feasible
            and evaluation.granularity <= self.granularity_max
            and evaluation.f_sample >= self.f_sample_min
            and evaluation.mean_current <= self.current_max
        )


@dataclass(frozen=True)
class SiteAssignment:
    """The cheapest qualifying design for one site."""

    site: SiteRequirement
    config: FSConfig
    evaluation: Evaluation

    def summary(self) -> str:
        e = self.evaluation
        return (
            f"{self.site.name}: {self.config.label()} — "
            f"{e.mean_current * 1e6:.3f} uA, {e.granularity * 1e3:.1f} mV, "
            f"{e.f_sample / 1e3:.0f} kHz"
        )


class DeploymentPlanner:
    """Assign Pareto-optimal monitor designs to sites, cheapest first.

    The candidate pool defaults to the deterministic grid sweep's Pareto
    front for ``tech``.  The sweep runs once per planner (and is shared
    with :func:`repro.dse.select.select_config` via the model's grid
    cache); every subsequent site assignment is a filter over the
    in-memory front.  Tests can inject a hand-built ``candidates`` list
    to stay fast.
    """

    def __init__(
        self,
        tech: TechnologyCard = TECH_90NM,
        model: Optional[PerformanceModel] = None,
        candidates: Optional[Sequence[Evaluation]] = None,
    ):
        self.tech = tech
        self.model = model or PerformanceModel(DesignSpace(tech))
        self._candidates: Optional[List[Evaluation]] = (
            list(candidates) if candidates is not None else None
        )

    # ------------------------------------------------------------------
    def candidates(self) -> List[Evaluation]:
        if self._candidates is None:
            # Share the grid with select_config's per-model cache.
            grid = getattr(self.model, "_select_grid_cache", None)
            if grid is None:
                grid = grid_explore(self.model)
                self.model._select_grid_cache = grid
            self._candidates = list(grid.pareto)
        return self._candidates

    def assign(self, site: SiteRequirement) -> SiteAssignment:
        """Cheapest (lowest mean-current) design meeting the site's needs."""
        qualifying = [e for e in self.candidates() if site.admits(e)]
        if not qualifying:
            raise ConfigurationError(
                f"no {self.tech.name} Pareto design meets site {site.name!r} "
                f"(granularity <= {site.granularity_max * 1e3:.0f} mV, "
                f"f_sample >= {site.f_sample_min / 1e3:.0f} kHz, "
                f"current <= {site.current_max * 1e6:.1f} uA)"
            )
        best = min(qualifying, key=lambda e: (e.mean_current, e.granularity))
        space = self.model.space if hasattr(self.model, "space") else DesignSpace(self.tech)
        return SiteAssignment(site=site, config=space.to_config(best.point), evaluation=best)

    def plan(self, sites: Sequence[SiteRequirement]) -> List[SiteAssignment]:
        return [self.assign(site) for site in sites]

    # ------------------------------------------------------------------
    def to_fleet(
        self,
        assignments: Sequence[SiteAssignment],
        duration: float = 300.0,
        trace: str = "nyc_pedestrian_night",
        engine: str = "fast",
        name: str = "planned-fleet",
    ) -> FleetSpec:
        """Materialize a plan as a runnable fleet (one device per site)."""
        devices = []
        for i, assignment in enumerate(assignments):
            config = assignment.config
            params: Tuple[Tuple[str, float], ...] = (
                ("counter_bits", config.counter_bits),
                ("entry_bits", config.entry_bits),
                ("f_sample", config.f_sample),
                ("nvm_entries", config.nvm_entries),
                ("ro_length", config.ro_length),
                ("t_enable", config.t_enable),
            )
            site = assignment.site
            devices.append(
                DeviceSpec(
                    device_id=i,
                    tech=self.tech.name,
                    monitor="fs",
                    monitor_params=params,
                    panel_area_cm2=site.panel_area_cm2,
                    capacitance=site.capacitance,
                    trace=trace,
                    trace_seed=site.trace_seed,
                    trace_duration=duration,
                    trace_scale=site.trace_scale,
                    policy=site.policy,
                    engine=engine,
                )
            )
        return FleetSpec(devices=tuple(devices), name=name)
