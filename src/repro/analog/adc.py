"""SAR ADC model: the incumbent voltage monitor Failure Sentinels replaces.

Table I of the paper shows integrated ADCs on sensor-mote-class parts
draw as much current as the core itself (265-295 uA including the
bandgap reference).  This model captures the behaviour the system-level
comparison needs: quantized voltage readings at a bounded sample rate,
for a large, mostly voltage-independent current cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import kilo, micro


@dataclass(frozen=True)
class SARADC:
    """Successive-approximation ADC with internal voltage reference.

    Defaults follow the MSP430FR5969's ADC12 as used in the paper's
    Table IV row: 12-bit over a 2.5 V full scale sampling at 200 kHz,
    drawing 265 uA (converter + reference).
    """

    resolution_bits: int = 12
    full_scale: float = 2.5
    sample_rate: float = kilo(200)
    supply_current: float = micro(265)
    min_supply_voltage: float = 1.8

    def __post_init__(self) -> None:
        if not 1 <= self.resolution_bits <= 24:
            raise ConfigurationError("ADC resolution out of range")
        if self.full_scale <= 0 or self.sample_rate <= 0:
            raise ConfigurationError("ADC scale and rate must be positive")

    @property
    def lsb(self) -> float:
        """Voltage per code step (V) — 0.61 mV for the default; the paper
        reports 0.293 mV against a 1.2 V reference setting."""
        return self.full_scale / (2**self.resolution_bits)

    def quantize(self, voltage: float) -> int:
        """Convert a voltage into an output code (saturating)."""
        if voltage <= 0:
            return 0
        code = int(voltage / self.lsb)
        return min(code, 2**self.resolution_bits - 1)

    def measure(self, voltage: float) -> float:
        """Round-trip a voltage through the converter (V)."""
        return self.quantize(voltage) * self.lsb

    def resolution_volts(self) -> float:
        return self.lsb

    def conversion_time(self) -> float:
        """Seconds per conversion."""
        return 1.0 / self.sample_rate
