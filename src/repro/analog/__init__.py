"""Analog building blocks of Failure Sentinels and its competitors.

Analytic models (fast, used by the design-space exploration and the
system simulator) with SPICE builders (slow, used to validate the
analytic models at device level):

* :mod:`repro.analog.inverter` — single-stage gate delay and energy;
* :mod:`repro.analog.ring_oscillator` — the self-oscillating loop;
* :mod:`repro.analog.divider` — the diode-connected PMOS voltage divider;
* :mod:`repro.analog.level_shifter` — low-voltage to core-voltage
  interfacing;
* :mod:`repro.analog.adc` / :mod:`repro.analog.comparator` — the analog
  alternatives Failure Sentinels replaces (Table I).
"""

from repro.analog.inverter import Inverter, CurrentStarvedInverter
from repro.analog.ring_oscillator import RingOscillator, build_ro_circuit
from repro.analog.divider import VoltageDivider, build_divider_circuit
from repro.analog.level_shifter import LevelShifter
from repro.analog.adc import SARADC
from repro.analog.comparator import AnalogComparator

__all__ = [
    "Inverter",
    "CurrentStarvedInverter",
    "RingOscillator",
    "build_ro_circuit",
    "VoltageDivider",
    "build_divider_circuit",
    "LevelShifter",
    "SARADC",
    "AnalogComparator",
]
