"""The transistor voltage divider that sets the RO operating region.

Section III-F: the RO must operate in the steep, monotonic low-voltage
region of the frequency-voltage curve, so Failure Sentinels supplies it
from a stack of ``m`` diode-connected PMOS devices tapped ``n`` devices
above ground (``V_ro = V_supply * n / m``).  Loading by the RO pulls the
tap below nominal; the paper compensates by widening the devices between
the tap and the supply, and the enrollment step absorbs the residual.

The analytic model here exposes the nominal ratio, a first-order droop
estimate, the divider's own current draw, and the sensitivity-gain metric
G (Equation 2) used to choose the ratio.  :func:`build_divider_circuit`
produces the device-level netlist for validation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.analog.ring_oscillator import RingOscillator
from repro.errors import ConfigurationError
from repro.spice.netlist import Circuit, GROUND
from repro.spice.devices import DiodeConnectedMOSFET, VoltageSource, Resistor, Switch
from repro.tech.ptm import TechnologyCard
from repro.units import ROOM_TEMP_K

#: Candidate ratios the paper considers implementable in few transistors.
CANDIDATE_RATIOS: Tuple[Tuple[int, int], ...] = ((1, 2), (1, 3), (2, 3), (1, 4), (3, 4))


@dataclass(frozen=True)
class VoltageDivider:
    """Diode-connected PMOS divider with ratio ``tap / total``.

    ``upper_width`` is the sizing multiplier applied to the devices
    between the tap and the supply (Section III-F widens these to feed
    the RO with less droop).
    """

    tech: TechnologyCard
    tap: int = 1
    total: int = 3
    upper_width: float = 4.0

    def __post_init__(self) -> None:
        if not 1 <= self.tap < self.total:
            raise ConfigurationError(f"divider tap {self.tap}/{self.total} invalid")
        if self.upper_width < 1.0:
            raise ConfigurationError("upper_width must be >= 1 (widened, not narrowed)")

    @property
    def ratio(self) -> float:
        return self.tap / self.total

    def nominal_output(self, v_supply: float) -> float:
        """Unloaded tap voltage."""
        return v_supply * self.ratio

    # ------------------------------------------------------------------
    # Electrical behaviour
    # ------------------------------------------------------------------
    def bias_current(self, v_supply: float, temp_k: float = ROOM_TEMP_K) -> float:
        """Static current down the stack while enabled (A).

        Each diode rung drops ``v_supply / total`` of gate-source voltage;
        the stack current is the unit device's drive at that bias, scaled
        by the bottom (unit-width) rung which limits the chain.
        """
        v_rung = v_supply / self.total
        return self.tech.drive_current(v_rung, temp_k)

    def output_impedance(self, v_supply: float, temp_k: float = ROOM_TEMP_K) -> float:
        """Small-signal impedance at the tap (ohm), first order.

        A diode-connected device looks like ``1/gm``; the tap sees the
        upper chain (widened) in parallel with the lower chain.
        """
        v_rung = v_supply / self.total
        dv = 1e-3
        gm = (self.tech.drive_current(v_rung + dv, temp_k) - self.tech.drive_current(v_rung - dv, temp_k)) / (2 * dv)
        if gm <= 0:
            return math.inf
        r_rung = 1.0 / gm
        r_upper = (self.total - self.tap) * r_rung / self.upper_width
        r_lower = self.tap * r_rung
        return r_upper * r_lower / (r_upper + r_lower)

    def loaded_output(self, v_supply: float, load_current: float, temp_k: float = ROOM_TEMP_K) -> float:
        """Tap voltage with the RO drawing ``load_current`` (A).

        First-order droop through the upper chain's impedance; clamped
        at zero.  The enrollment process absorbs residual error
        (Section III-F), so first order suffices here.
        """
        v_rung = v_supply / self.total
        dv = 1e-3
        gm = (self.tech.drive_current(v_rung + dv, temp_k) - self.tech.drive_current(v_rung - dv, temp_k)) / (2 * dv)
        if gm <= 0:
            return 0.0
        r_upper = (self.total - self.tap) / (gm * self.upper_width)
        return max(0.0, self.nominal_output(v_supply) - load_current * r_upper)

    def transistor_count(self) -> int:
        """Stack devices plus the enable NMOS foot (Figure 2)."""
        return self.total + 1

    # ------------------------------------------------------------------
    # Ratio selection (Equation 2)
    # ------------------------------------------------------------------
    def sensitivity_gain(self, ro: RingOscillator, v_supply_range: Sequence[float]) -> float:
        """Sensitivity gain G of dividing versus direct connection.

        ``G = (S_new / S_old) * (tap / total)`` where S is the mean
        absolute frequency sensitivity of ``ro`` over the region it
        actually sees (Equation 2).
        """
        if len(v_supply_range) < 2:
            raise ConfigurationError("need at least two supply points for G")
        s_old = _mean_sensitivity(ro, v_supply_range)
        divided = [self.nominal_output(v) for v in v_supply_range]
        s_new = _mean_sensitivity(ro, divided)
        if s_old == 0:
            return math.inf if s_new > 0 else 0.0
        return (s_new / s_old) * self.ratio


def _mean_sensitivity(ro: RingOscillator, voltages: Sequence[float]) -> float:
    values = [abs(ro.sensitivity(v)) for v in voltages]
    return sum(values) / len(values)


#: Margin above threshold the divided region must keep.  Below this the
#: ring runs in near-subthreshold: sensitivity explodes but the curve
#: turns exponential (poor interpolation) and hyper-sensitive to
#: temperature.  The paper targets the region where sensitivity is "most
#: linear" (Section VI), which this constraint encodes.
LINEAR_REGION_MARGIN = 0.20


def best_divider_ratio(
    tech: TechnologyCard,
    ro: RingOscillator,
    v_supply_range: Sequence[float],
    candidates: Sequence[Tuple[int, int]] = CANDIDATE_RATIOS,
) -> VoltageDivider:
    """Choose the ratio maximizing G within the linear operating region;
    ties break toward the smaller ratio, which lowers RO operating
    voltage and power (Section III-F picks 1/3 over 1/2 this way)."""
    v_min_supply = min(v_supply_range)
    floor = tech.vth + LINEAR_REGION_MARGIN
    best: Optional[VoltageDivider] = None
    best_key: Tuple[float, float] = (-math.inf, 0.0)
    for tap, total in candidates:
        div = VoltageDivider(tech, tap, total)
        if div.nominal_output(v_min_supply) < floor:
            continue
        gain = div.sensitivity_gain(ro, v_supply_range)
        # Rank by gain rounded to ~10% buckets, then by *lower* ratio.
        key = (round(gain / 0.1) * 0.1, -div.ratio)
        if key > best_key:
            best_key = key
            best = div
    if best is None:
        raise ConfigurationError(
            "no divider ratio keeps the ring in its linear region over "
            f"supply range starting at {v_min_supply} V"
        )
    return best


def build_divider_circuit(
    divider: VoltageDivider,
    v_supply: float,
    load_resistance: Optional[float] = None,
    enabled: bool = True,
    temp_k: float = ROOM_TEMP_K,
) -> Circuit:
    """Device-level netlist of the divider (Figure 2, left).

    Nodes: ``vdd`` at the top, ``tapN`` for each intermediate node with
    ``tap`` being the RO supply tap, ``foot`` above the enable switch.
    ``load_resistance`` optionally models the RO as a resistive load at
    the tap.
    """
    circuit = Circuit(f"divider_{divider.tap}_{divider.total}_{divider.tech.name}")
    circuit.add(VoltageSource("VDD", "vdd", GROUND, v_supply))
    # Build from the top: total - tap widened devices, then tap unit ones.
    nodes = ["vdd"]
    for i in range(divider.total - 1):
        nodes.append(f"d{i}")
    nodes.append("foot")
    tap_index = divider.total - divider.tap  # node below the widened chain
    for i in range(divider.total):
        hi, lo = nodes[i], nodes[i + 1]
        width = divider.upper_width if i < divider.total - divider.tap else 1.0
        circuit.add(DiodeConnectedMOSFET(f"MD{i}", hi, lo, divider.tech, width=width, temp_k=temp_k))
    circuit.add(Switch("SEN", "foot", GROUND, closed=enabled, on_resistance=10.0))
    tap_node = nodes[tap_index]
    if load_resistance is not None:
        circuit.add(Resistor("RLOAD", tap_node, GROUND, load_resistance))
    return circuit


def divider_tap_node(divider: VoltageDivider) -> str:
    """Name of the tap node in :func:`build_divider_circuit` netlists."""
    index = divider.total - divider.tap
    nodes = ["vdd"] + [f"d{i}" for i in range(divider.total - 1)] + ["foot"]
    return nodes[index]
