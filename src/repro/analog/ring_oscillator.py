"""Ring oscillators: the sensing element of Failure Sentinels.

An odd ring of inverters self-oscillates at ``f = 1 / (2 n tau_d)``
(paper Equation 1), making frequency a monotonic function of supply
voltage in the low-voltage operating region.  This module provides:

* :class:`RingOscillator` — the analytic model used by the monitor, the
  design-space exploration and the experiments: frequency, sensitivity
  (absolute and relative), enabled current, and transistor/area counts;
* :func:`build_ro_circuit` — a device-level SPICE netlist of the same
  ring (inverters as MOSFET pairs with explicit load capacitors) used by
  validation tests to check the analytic model against the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analog.inverter import Inverter, TRANSISTORS_PER_INVERTER
from repro.errors import ConfigurationError
from repro.spice.netlist import Circuit, GROUND
from repro.spice.devices import MOSFET, Capacitor, VoltageSource
from repro.tech.ptm import TechnologyCard, MIN_OSCILLATION_VOLTAGE
from repro.units import ROOM_TEMP_K

#: Extra transistors for the NAND gate that closes the loop and carries
#: the enable signal (Figure 2): a 2-input CMOS NAND.
NAND_TRANSISTORS = 4

#: RO length bounds from the paper's Table III.
MIN_STAGES = 3
MAX_STAGES = 73


def is_valid_ro_length(n_stages: int) -> bool:
    """Ring lengths must be odd (even rings latch instead of oscillate)
    and within the paper's explored bounds."""
    return MIN_STAGES <= n_stages <= MAX_STAGES and n_stages % 2 == 1


def recommended_lengths() -> list:
    """Prime ring lengths in-bounds — primes reduce harmonic modes
    (Section III-A)."""
    primes = []
    for n in range(MIN_STAGES, MAX_STAGES + 1, 2):
        if all(n % p for p in range(3, int(math.isqrt(n)) + 1, 2)):
            primes.append(n)
    return primes


@dataclass(frozen=True)
class RingOscillator:
    """Analytic ring-oscillator model.

    One stage of the ring is the NAND that closes the loop; its delay is
    modelled as an ordinary inverter stage, so ``n_stages`` counts every
    delay element in the loop.
    """

    tech: TechnologyCard
    n_stages: int
    drive_width: float = 1.0

    def __post_init__(self) -> None:
        if not is_valid_ro_length(self.n_stages):
            raise ConfigurationError(
                f"RO length {self.n_stages} invalid: must be odd and in "
                f"[{MIN_STAGES}, {MAX_STAGES}]"
            )

    @property
    def inverter(self) -> Inverter:
        return Inverter(self.tech, self.drive_width)

    # ------------------------------------------------------------------
    # Frequency
    # ------------------------------------------------------------------
    def frequency(self, vdd: float, temp_k: float = ROOM_TEMP_K) -> float:
        """Oscillation frequency at ring supply ``vdd`` (Hz).

        Equation 1: ``f = 1 / (2 n tau_d)``.  Returns 0 below the
        oscillation cutoff.
        """
        tau = self.inverter.delay(vdd, temp_k)
        if not math.isfinite(tau) or vdd < MIN_OSCILLATION_VOLTAGE:
            return 0.0
        return 1.0 / (2.0 * self.n_stages * tau)

    def period(self, vdd: float, temp_k: float = ROOM_TEMP_K) -> float:
        f = self.frequency(vdd, temp_k)
        if f <= 0:
            return math.inf
        return 1.0 / f

    def sensitivity(self, vdd: float, temp_k: float = ROOM_TEMP_K, dv: float = 1e-4) -> float:
        """Absolute sensitivity df/dV at ``vdd`` (Hz per volt).

        Central difference; the quantity plotted in the paper's Figure 3.
        """
        lo = self.frequency(vdd - dv, temp_k)
        hi = self.frequency(vdd + dv, temp_k)
        return (hi - lo) / (2 * dv)

    def relative_sensitivity(self, vdd: float, temp_k: float = ROOM_TEMP_K) -> float:
        """d(ln f)/dV (1/V): sensitivity independent of ring length."""
        f = self.frequency(vdd, temp_k)
        if f <= 0:
            return 0.0
        return self.sensitivity(vdd, temp_k) / f

    def peak_frequency_voltage(self, v_lo: float = MIN_OSCILLATION_VOLTAGE, v_hi: float = 3.6, steps: int = 341) -> float:
        """Supply voltage at which frequency peaks (golden-section-free
        grid scan; Figure 1 shows the peak then decline)."""
        best_v, best_f = v_lo, 0.0
        for i in range(steps):
            v = v_lo + i * (v_hi - v_lo) / (steps - 1)
            f = self.frequency(v)
            if f > best_f:
                best_v, best_f = v, f
        return best_v

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def dynamic_current(self, vdd: float, temp_k: float = ROOM_TEMP_K) -> float:
        """Average supply current while oscillating (A).

        Only one stage switches at a time, so the dynamic current is
        length-independent (Section III-D): every stage toggles twice per
        period, giving ``I = 2 n C V f = C V / tau_d``.
        """
        tau = self.inverter.delay(vdd, temp_k)
        if not math.isfinite(tau) or vdd < MIN_OSCILLATION_VOLTAGE:
            return 0.0
        return self.tech.c_switch * vdd / tau

    def leakage_current(self) -> float:
        """Static current with the ring disabled (A); grows with length."""
        per_stage = self.inverter.leakage_current()
        return self.n_stages * per_stage + NAND_TRANSISTORS * self.tech.leak_per_transistor

    def enabled_current(self, vdd: float, temp_k: float = ROOM_TEMP_K) -> float:
        """Total ring current while enabled (A)."""
        return self.dynamic_current(vdd, temp_k) + self.leakage_current()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def transistor_count(self) -> int:
        """Transistors in the ring proper: (n-1) inverters + the NAND
        that closes the loop and carries the enable."""
        return (self.n_stages - 1) * TRANSISTORS_PER_INVERTER + NAND_TRANSISTORS

    def counts_in_window(self, vdd: float, t_enable: float, temp_k: float = ROOM_TEMP_K) -> int:
        """Rising edges a counter accumulates over ``t_enable`` seconds.

        The edge-sensitive counter truncates fractional periods
        (Section III-E): ``C = floor(f_ro * T_en)``.
        """
        if t_enable <= 0:
            raise ConfigurationError("enable window must be positive")
        return int(self.frequency(vdd, temp_k) * t_enable)


def build_ro_circuit(
    tech: TechnologyCard,
    n_stages: int,
    vdd: float,
    load_cap: Optional[float] = None,
    temp_k: float = ROOM_TEMP_K,
) -> Circuit:
    """Device-level netlist of an ``n_stages`` ring at supply ``vdd``.

    Each stage is a PMOS/NMOS pair driving an explicit load capacitor
    equal to the card's effective switched capacitance.  Stage outputs
    are nodes ``s0 .. s{n-1}``; the ring feeds ``s{n-1}`` back into the
    first stage's gates.  Start a transient from a staggered initial
    condition to kick off oscillation.
    """
    if not is_valid_ro_length(n_stages):
        raise ConfigurationError(f"invalid RO length {n_stages}")
    cap = tech.c_switch if load_cap is None else load_cap
    circuit = Circuit(f"ro{n_stages}_{tech.name}")
    circuit.add(VoltageSource("VDD", "vdd", GROUND, vdd))
    for i in range(n_stages):
        inp = f"s{(i - 1) % n_stages}"
        out = f"s{i}"
        circuit.add(MOSFET(f"MP{i}", out, inp, "vdd", tech, "p", temp_k=temp_k))
        circuit.add(MOSFET(f"MN{i}", out, inp, GROUND, tech, "n", temp_k=temp_k))
        circuit.add(Capacitor(f"CL{i}", out, GROUND, cap))
    return circuit


def staggered_initial_condition(n_stages: int, vdd: float) -> Dict[str, float]:
    """Alternating-rail initial node voltages that start the ring.

    An odd ring has no stable DC point with alternating levels, so this
    forces oscillation from t=0 in transient analysis.
    """
    init = {"vdd": vdd}
    for i in range(n_stages):
        init[f"s{i}"] = vdd if i % 2 == 0 else 0.0
    return init
