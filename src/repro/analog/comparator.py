"""Analog comparator model: the single-bit alternative (Section II-B).

Recent just-in-time checkpointing systems (Hibernus, QuickRecall) replace
the ADC with an analog comparator plus reference: cheaper than an ADC but
still burning tens of microamps in the reference generator, and limited
to a single programmable threshold rather than a poll-able value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import micro, nano, milli


@dataclass(frozen=True)
class AnalogComparator:
    """Continuous-time comparator with a resistor-ladder threshold.

    Defaults follow the MSP430FR5969 comparator row of the paper's
    Tables I/IV: 35 uA total (comparator + reference ladder), a 30 mV
    effective threshold resolution (ladder step), and a 330 ns response
    time, which the paper converts to an effective 3030 Hz-class "sample
    rate" for comparison purposes.
    """

    supply_current: float = micro(35)
    threshold_resolution: float = milli(30)
    response_time: float = nano(330)
    min_supply_voltage: float = 1.8

    def __post_init__(self) -> None:
        if self.supply_current < 0:
            raise ConfigurationError("comparator current must be non-negative")
        if self.threshold_resolution <= 0 or self.response_time <= 0:
            raise ConfigurationError("resolution and response time must be positive")

    def effective_sample_rate(self) -> float:
        """1 / response time: the fastest it can signal a crossing (Hz)."""
        return 1.0 / self.response_time

    def quantize_threshold(self, requested: float) -> float:
        """Nearest achievable threshold at or above ``requested``.

        The ladder only realizes discrete steps; rounding *up* keeps the
        checkpoint guarantee conservative.
        """
        if requested <= 0:
            raise ConfigurationError("threshold must be positive")
        steps = int(-(-requested // self.threshold_resolution))  # ceil
        return steps * self.threshold_resolution

    def compare(self, voltage: float, threshold: float) -> bool:
        """True when ``voltage`` is at or below ``threshold`` (the
        checkpoint-now signal)."""
        return voltage <= threshold

    def resolution_volts(self) -> float:
        return self.threshold_resolution
