"""The basic CMOS inverter used as the ring-oscillator delay element.

The paper deliberately chooses the *simplest* inverter — one PMOS and one
NMOS tied straight to the rails — because unlike the current-starved
cells used in communications ROs, it maximizes sensitivity to supply
voltage (Section III-F.a).  This module wraps the technology card's delay
physics in an object with the quantities the rest of the library needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.ptm import TechnologyCard, MIN_OSCILLATION_VOLTAGE
from repro.units import ROOM_TEMP_K

#: Transistors in the basic inverter cell (one PMOS + one NMOS).
TRANSISTORS_PER_INVERTER = 2


@dataclass(frozen=True)
class Inverter:
    """One delay stage in a given technology.

    ``drive_width`` is a relative sizing multiplier: wider devices switch
    their (unchanged external) load faster and draw proportionally more
    current.
    """

    tech: TechnologyCard
    drive_width: float = 1.0

    def __post_init__(self) -> None:
        if self.drive_width <= 0:
            raise ConfigurationError("drive_width must be positive")

    def delay(self, vdd: float, temp_k: float = ROOM_TEMP_K) -> float:
        """Propagation delay at supply ``vdd`` (s); inf below cutoff."""
        return self.tech.gate_delay(vdd, temp_k) / self.drive_width

    def oscillates(self, vdd: float) -> bool:
        """Whether a ring of these stages would oscillate at ``vdd``."""
        return vdd >= MIN_OSCILLATION_VOLTAGE and math.isfinite(self.delay(vdd))

    def switch_energy(self, vdd: float) -> float:
        """Energy per output transition (J)."""
        return self.tech.stage_switch_energy(vdd)

    def leakage_current(self) -> float:
        """Static leakage of the cell (A)."""
        return TRANSISTORS_PER_INVERTER * self.tech.leak_per_transistor

    def transistor_count(self) -> int:
        return TRANSISTORS_PER_INVERTER


@dataclass(frozen=True)
class CurrentStarvedInverter:
    """The cell Failure Sentinels deliberately does NOT use.

    Communications/clock-generation ring oscillators starve each
    inverter through a bias-controlled current source, which *isolates*
    the delay from supply noise: frequency becomes a function of the
    bias voltage, not the rail (Section III-F.a).  Great for a VCO,
    useless for a supply sensor.

    The model: delay is set by the starve current (from ``bias``), and
    the supply only leaks in through a small ``supply_leakage``
    coefficient representing finite current-source output impedance.
    """

    tech: TechnologyCard
    bias: float = 0.6
    supply_leakage: float = 0.05

    def __post_init__(self) -> None:
        if self.bias <= 0:
            raise ConfigurationError("bias voltage must be positive")
        if not 0 <= self.supply_leakage < 1:
            raise ConfigurationError("supply_leakage must be in [0, 1)")

    def delay(self, vdd: float, temp_k: float = ROOM_TEMP_K) -> float:
        """Delay dominated by the bias, weakly dependent on the rail.

        The starving source fixes the charging current and the internal
        swing is clamped near the bias, so only the current source's
        finite output impedance (``supply_leakage`` per volt) couples
        the rail into the delay.
        """
        if vdd < MIN_OSCILLATION_VOLTAGE or vdd < self.bias:
            return math.inf
        tau_bias = self.tech.gate_delay(self.bias + 0.4, temp_k)
        if not math.isfinite(tau_bias):
            return math.inf
        return tau_bias / (1.0 + self.supply_leakage * (vdd - self.bias))

    def oscillates(self, vdd: float) -> bool:
        return math.isfinite(self.delay(vdd))

    def relative_supply_sensitivity(self, vdd: float, dv: float = 1e-3) -> float:
        """|d ln f / dV_supply| — what a supply sensor wants maximized."""
        lo, hi = self.delay(vdd - dv), self.delay(vdd + dv)
        if not (math.isfinite(lo) and math.isfinite(hi)):
            return 0.0
        return abs(math.log(lo / hi)) / (2 * dv)
