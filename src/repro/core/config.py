"""Failure Sentinels configuration: the paper's six design parameters.

Table III bounds the design space the paper explores; :class:`FSConfig`
carries one point of it plus the deployment context (technology card,
supply range, divider choice) and validates everything at construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.analog.divider import VoltageDivider
from repro.analog.ring_oscillator import is_valid_ro_length
from repro.errors import ConfigurationError
from repro.tech.ptm import TechnologyCard, MAX_SUPPLY_VOLTAGE
from repro.units import micro, milli, kilo

# ----------------------------------------------------------------------
# Table III design-parameter bounds.
# ----------------------------------------------------------------------
RO_LENGTH_MIN, RO_LENGTH_MAX = 3, 73
F_SAMPLE_MIN, F_SAMPLE_MAX = kilo(1), kilo(10)
COUNTER_BITS_MIN, COUNTER_BITS_MAX = 1, 16
T_ENABLE_MIN, T_ENABLE_MAX = micro(1), milli(1)
NVM_ENTRIES_MIN, NVM_ENTRIES_MAX = 1, 128
ENTRY_BITS_MIN, ENTRY_BITS_MAX = 1, 16

# Table III performance-parameter bounds (the exploration's constraints).
MEAN_CURRENT_MAX = micro(5)
GRANULARITY_MAX = milli(50)
NVM_OVERHEAD_MAX_BYTES = 128
TRANSISTOR_COUNT_MAX = 1000

#: Default operating range for energy-harvesting-class microcontrollers
#: (MSP430/PIC recommended range, Section III-F).
DEFAULT_SUPPLY_RANGE: Tuple[float, float] = (1.8, 3.6)


@dataclass(frozen=True)
class FSConfig:
    """One Failure Sentinels design point.

    Parameters map one-to-one onto Table III's design parameters, plus
    the deployment context:

    tech:
        Process node card.
    ro_length:
        Ring stages (odd, 3..73).
    counter_bits:
        Edge-counter width (1..16; bounded to suit 16-bit MCUs).
    t_enable:
        Seconds the ring is powered per sample (1 us .. 1 ms).
    f_sample:
        Samples per second (1 kHz .. 10 kHz).
    nvm_entries / entry_bits:
        Enrollment lookup-table shape (1..128 entries of 1..16 bits).
    divider_tap / divider_total:
        Voltage-divider ratio; the paper settles on 1/3.
    v_supply_range:
        (min, max) supply voltage the monitor must cover.
    """

    tech: TechnologyCard
    ro_length: int = 7
    counter_bits: int = 8
    t_enable: float = micro(2)
    f_sample: float = kilo(5)
    nvm_entries: int = 49
    entry_bits: int = 8
    divider_tap: int = 1
    divider_total: int = 3
    v_supply_range: Tuple[float, float] = DEFAULT_SUPPLY_RANGE

    def __post_init__(self) -> None:
        if not is_valid_ro_length(self.ro_length):
            raise ConfigurationError(
                f"ro_length={self.ro_length}: must be odd, in [{RO_LENGTH_MIN}, {RO_LENGTH_MAX}]"
            )
        if not COUNTER_BITS_MIN <= self.counter_bits <= COUNTER_BITS_MAX:
            raise ConfigurationError(f"counter_bits={self.counter_bits} out of Table III bounds")
        if not T_ENABLE_MIN <= self.t_enable <= T_ENABLE_MAX:
            raise ConfigurationError(f"t_enable={self.t_enable} out of [1 us, 1 ms]")
        if not F_SAMPLE_MIN <= self.f_sample <= F_SAMPLE_MAX:
            raise ConfigurationError(f"f_sample={self.f_sample} out of [1 kHz, 10 kHz]")
        if not NVM_ENTRIES_MIN <= self.nvm_entries <= NVM_ENTRIES_MAX:
            raise ConfigurationError(f"nvm_entries={self.nvm_entries} out of [1, 128]")
        if not ENTRY_BITS_MIN <= self.entry_bits <= ENTRY_BITS_MAX:
            raise ConfigurationError(f"entry_bits={self.entry_bits} out of [1, 16]")
        v_lo, v_hi = self.v_supply_range
        if not 0 < v_lo < v_hi <= MAX_SUPPLY_VOLTAGE:
            raise ConfigurationError(f"supply range {self.v_supply_range} invalid")
        if self.duty_cycle > 1.0:
            raise ConfigurationError(
                f"duty cycle {self.duty_cycle:.3f} > 1: t_enable exceeds the sample period"
            )
        # Divider bounds checked by constructing it.
        _ = self.divider

    # ------------------------------------------------------------------
    @property
    def t_sample(self) -> float:
        """Seconds between samples."""
        return 1.0 / self.f_sample

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the ring is powered: D = T_en / T_sample."""
        return self.t_enable * self.f_sample

    @property
    def divider(self) -> VoltageDivider:
        return VoltageDivider(self.tech, self.divider_tap, self.divider_total)

    @property
    def counter_max(self) -> int:
        """Largest representable count: 2^bits - 1."""
        return (1 << self.counter_bits) - 1

    @property
    def nvm_overhead_bytes(self) -> float:
        """NVM consumed by the enrollment table (bytes)."""
        return self.nvm_entries * self.entry_bits / 8.0

    def label(self) -> str:
        """Compact human-readable identity for tables and logs."""
        return (
            f"FS[{self.tech.name} n={self.ro_length} cnt={self.counter_bits}b "
            f"Ten={self.t_enable * 1e6:.0f}us Fs={self.f_sample / 1e3:.0f}kHz "
            f"lut={self.nvm_entries}x{self.entry_bits}b]"
        )
