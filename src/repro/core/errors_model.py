"""Failure Sentinels' analytic error budget.

Section V-A augments the SPICE-derived model with every error source a
real deployment sees; this module reproduces that accounting.  Four
terms, all expressed as worst-case supply-voltage error in volts:

``quantization``
    The counter resolves frequency in steps of ``1/T_en``; through the
    supply-referred slope that is ``1 / (T_en * |df/dVsupply|)`` volts.
``interpolation``
    Equation 4's piecewise-linear bound for the configured table size.
``temperature``
    A 2% worst-case frequency wobble (Section V-C) reads as
    ``0.02 * f / |df/dVsupply|`` volts.
``entry_precision``
    Stored-entry width floor: ``range / 2^entry_bits`` (Figure 4's
    dashed line).

The budget is evaluated in the *checkpoint region* — the lower quarter
of the supply range — because that is where just-in-time checkpointing
consumes the measurement and where the divided ring is most sensitive.
Totals are the plain sum of terms: conservative, like the paper's
"worst-case measurement error" margining in Section V-D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analog.ring_oscillator import RingOscillator
from repro.core.calibration import (
    entry_precision_floor,
    piecewise_linear_error_bound,
    voltage_of_frequency_derivatives,
)
from repro.core.config import FSConfig
from repro.core.sensitivity import (
    frequency_function,
    monitor_frequency,
    supply_relative_sensitivity,
    supply_sensitivity,
)
from repro.errors import CalibrationError, ConfigurationError
from repro.tech.temperature import DESIGN_THERMAL_ERROR_FRACTION
from repro.units import ROOM_TEMP_K


@dataclass(frozen=True)
class ErrorBudget:
    """Per-source and total worst-case voltage error for one config."""

    quantization: float
    interpolation: float
    temperature: float
    entry_precision: float

    @property
    def total(self) -> float:
        return self.quantization + self.interpolation + self.temperature + self.entry_precision

    @property
    def total_without_temperature(self) -> float:
        """What the error would be in a thermally stable deployment —
        the paper notes temperature approximately doubles total error."""
        return self.quantization + self.interpolation + self.entry_precision

    def breakdown(self) -> dict:
        return {
            "quantization": self.quantization,
            "interpolation": self.interpolation,
            "temperature": self.temperature,
            "entry_precision": self.entry_precision,
            "total": self.total,
        }


def checkpoint_region(v_supply_range: Tuple[float, float]) -> Tuple[float, float]:
    """The lower quarter of the supply range, where JIT checkpointing
    reads the monitor."""
    v_lo, v_hi = v_supply_range
    return v_lo, v_lo + 0.25 * (v_hi - v_lo)


def evaluate_error_budget(
    config: FSConfig,
    temp_k: float = ROOM_TEMP_K,
    thermal_fraction: float = DESIGN_THERMAL_ERROR_FRACTION,
    v_eval: Optional[float] = None,
) -> ErrorBudget:
    """Compute the budget for ``config`` at ``v_eval`` (defaults to the
    middle of the checkpoint region)."""
    ro = RingOscillator(config.tech, config.ro_length)
    divider = config.divider
    region = checkpoint_region(config.v_supply_range)
    if v_eval is None:
        v_eval = 0.5 * (region[0] + region[1])
    elif not config.v_supply_range[0] <= v_eval <= config.v_supply_range[1]:
        raise ConfigurationError(f"v_eval={v_eval} outside supply range")

    slope = supply_sensitivity(ro, divider, v_eval, temp_k)
    if slope <= 0:
        raise ConfigurationError(
            f"{config.label()}: no voltage sensitivity at {v_eval} V "
            "(ring not oscillating?)"
        )

    quantization = 1.0 / (config.t_enable * slope)

    rel = supply_relative_sensitivity(ro, divider, v_eval, temp_k)
    temperature = thermal_fraction / rel if rel > 0 else float("inf")

    v_lo, v_hi = config.v_supply_range
    freq = frequency_function(ro, divider, temp_k)
    try:
        f_min, f_max, _max_dv, max_d2v = voltage_of_frequency_derivatives(freq, v_lo, v_hi)
        h = (f_max - f_min) / config.nvm_entries
        interpolation = piecewise_linear_error_bound(max_d2v, h)
    except CalibrationError:
        # Non-monotonic over the full range: interpolation undefined;
        # flag with an infinite term so the rejection filter drops it.
        interpolation = float("inf")

    entry = entry_precision_floor(v_lo, v_hi, config.entry_bits)

    return ErrorBudget(
        quantization=quantization,
        interpolation=interpolation,
        temperature=temperature,
        entry_precision=entry,
    )


def max_count(config: FSConfig, temp_k: float = ROOM_TEMP_K) -> int:
    """Largest count the ring can produce over the supply range.

    Frequency peaks *within* the divided range only if the divided
    maximum exceeds the peak voltage; scanning the endpoints plus a few
    interior points covers both cases.
    """
    ro = RingOscillator(config.tech, config.ro_length)
    divider = config.divider
    v_lo, v_hi = config.v_supply_range
    best = 0.0
    for i in range(9):
        v = v_lo + i * (v_hi - v_lo) / 8
        best = max(best, monitor_frequency(ro, divider, v, temp_k))
    return int(best * config.t_enable)
