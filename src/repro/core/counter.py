"""The edge counter that turns RO oscillation into a digital reading.

Hardware semantics (Section III-E): the counter increments on every
positive edge of the level-shifted RO output during the enable window.
Fractional periods truncate; a ring faster than the counter can hold
*overflows*, which the design-space rejection filter must prevent — the
counter itself either saturates or raises, depending on policy, so both
hardware-accurate modelling and bug-catching tests are possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, CounterOverflowError


@dataclass
class EdgeCounter:
    """An ``n``-bit positive-edge counter.

    Parameters
    ----------
    bits:
        Counter width.
    saturate:
        When True (default, matching real hardware) the count clamps at
        ``2**bits - 1``; when False, exceeding the maximum raises
        :class:`CounterOverflowError` (useful in validation).
    """

    bits: int
    saturate: bool = True
    _value: int = field(default=0, repr=False)
    _overflowed: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 64:
            raise ConfigurationError(f"counter bits {self.bits} out of [1, 64]")

    @property
    def max_value(self) -> int:
        return (1 << self.bits) - 1

    @property
    def value(self) -> int:
        return self._value

    @property
    def overflowed(self) -> bool:
        """Sticky flag set if any increment hit the ceiling."""
        return self._overflowed

    def reset(self) -> None:
        self._value = 0
        self._overflowed = False

    def increment(self, edges: int = 1) -> int:
        """Apply ``edges`` positive edges; returns the new value."""
        if edges < 0:
            raise ConfigurationError("cannot count negative edges")
        target = self._value + edges
        if target > self.max_value:
            self._overflowed = True
            if not self.saturate:
                raise CounterOverflowError(
                    f"{self.bits}-bit counter overflow: {target} > {self.max_value}"
                )
            target = self.max_value
        self._value = target
        return self._value

    def capture_window(self, frequency: float, t_enable: float) -> int:
        """Count edges of an oscillation over one enable window.

        Resets, then accumulates ``floor(frequency * t_enable)`` edges —
        the truncation the paper's Section III-E describes.
        """
        if frequency < 0 or t_enable <= 0:
            raise ConfigurationError("frequency must be >= 0 and window > 0")
        self.reset()
        return self.increment(int(frequency * t_enable))
