"""The Failure Sentinels monitor: composition of all the hardware blocks.

:class:`FailureSentinels` wires the pieces of Figure 2 together —
voltage divider, ring oscillator, level shifter, edge counter, digital
comparator — and layers the software contract on top: enrollment,
count-to-voltage conversion, threshold interrupts, and the power model
the design-space exploration and system simulator consume.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.analog.divider import VoltageDivider
from repro.analog.level_shifter import LevelShifter
from repro.analog.ring_oscillator import RingOscillator
from repro.core.calibration import (
    EnrollmentTable,
    FullEnrollment,
    PiecewiseConstant,
    PiecewiseLinear,
    TemperatureCompensatedTable,
    enroll_points,
    evenly_spaced_voltages,
)
from repro.core.config import FSConfig
from repro.core.counter import EdgeCounter
from repro.core.errors_model import ErrorBudget, evaluate_error_budget, max_count
from repro.core.sensitivity import monitor_frequency
from repro.errors import CalibrationError, ConfigurationError
from repro.units import ROOM_TEMP_K

#: Flip-flop cost per counter bit (transmission-gate DFF + increment).
_TRANSISTORS_PER_COUNTER_BIT = 24
#: Digital comparator for the interrupt threshold, per bit.
_TRANSISTORS_PER_COMPARATOR_BIT = 10
#: Enable sequencing / bus interface glue.
_CONTROL_TRANSISTORS = 20
#: Effective switched capacitance of one counter bit relative to c_switch.
_COUNTER_CAP_FACTOR = 3.0

_STRATEGIES = {
    "full": FullEnrollment,
    "constant": PiecewiseConstant,
    "linear": PiecewiseLinear,
}


class FailureSentinels:
    """A software-queriable, all-digital supply-voltage monitor.

    Typical lifecycle::

        fs = FailureSentinels(config)
        fs.enroll()                     # factory characterization
        count = fs.sample(v_supply)     # hardware: one enable window
        volts = fs.read_voltage(count)  # software: LUT conversion
        fs.set_threshold(1.87)          # checkpoint threshold
        fs.sample(1.85)                 # -> fs.interrupt_pending == True
    """

    def __init__(self, config: FSConfig, temp_k: float = ROOM_TEMP_K):
        self.config = config
        self.temp_k = temp_k
        self.ro = RingOscillator(config.tech, config.ro_length)
        self.divider: VoltageDivider = config.divider
        self.level_shifter = LevelShifter(config.tech)
        self.counter = EdgeCounter(config.counter_bits)
        self.table: Optional[EnrollmentTable] = None
        self._threshold_count: Optional[int] = None
        self.interrupt_pending = False
        self._validate_realizable()

    # ------------------------------------------------------------------
    # Construction-time checks (the DSE rejection filter mirrors these)
    # ------------------------------------------------------------------
    def _validate_realizable(self) -> None:
        worst = max_count(self.config, self.temp_k)
        if worst > self.config.counter_max:
            raise ConfigurationError(
                f"{self.config.label()}: counter overflows "
                f"(needs {worst}, holds {self.config.counter_max})"
            )
        v_lo, v_hi = self.config.v_supply_range
        f_peak = max(
            self.frequency_at(v_lo),
            self.frequency_at(v_hi),
        )
        if not self.level_shifter.can_follow(f_peak, v_lo, self.temp_k):
            raise ConfigurationError(
                f"{self.config.label()}: level shifter cannot follow "
                f"{f_peak / 1e6:.1f} MHz at {v_lo} V core"
            )
        if self.frequency_at(v_lo) <= 0:
            raise ConfigurationError(
                f"{self.config.label()}: ring does not oscillate at the "
                f"bottom of the supply range ({v_lo} V)"
            )

    # ------------------------------------------------------------------
    # Physics: what the hardware does
    # ------------------------------------------------------------------
    def ring_voltage(self, v_supply: float) -> float:
        """Divider tap voltage under RO load."""
        from repro.core.sensitivity import loaded_ring_voltage

        return loaded_ring_voltage(self.ro, self.divider, v_supply, self.temp_k)

    def frequency_at(self, v_supply: float, temp_k: Optional[float] = None) -> float:
        """RO frequency for a given supply voltage (Hz)."""
        return monitor_frequency(
            self.ro, self.divider, v_supply, self.temp_k if temp_k is None else temp_k
        )

    def count_at(self, v_supply: float, temp_k: Optional[float] = None) -> int:
        """Deterministic counter value for a supply voltage.

        The pure transfer function: used by enrollment and by callers
        that don't need interrupt side effects.
        """
        f = self.frequency_at(v_supply, temp_k)
        return min(int(f * self.config.t_enable), self.config.counter_max)

    def sample(self, v_supply: float, temp_k: Optional[float] = None) -> int:
        """Run one enable window: capture a count, update interrupt state.

        Models the hardware path of Figure 2: the enable opens the
        divider and ring, the counter accumulates level-shifted edges
        for ``t_enable``, and the digital comparator raises the
        interrupt line if the count is at or below the threshold.
        """
        f = self.frequency_at(v_supply, temp_k)
        value = self.counter.capture_window(f, self.config.t_enable)
        if self._threshold_count is not None and value <= self._threshold_count:
            self.interrupt_pending = True
        return value

    # ------------------------------------------------------------------
    # Software contract
    # ------------------------------------------------------------------
    def enroll(
        self,
        strategy: str = "linear",
        n_points: Optional[int] = None,
        voltages: Optional[Sequence[float]] = None,
    ) -> EnrollmentTable:
        """Factory characterization against known supply voltages.

        Samples this device's own transfer function (which includes its
        process variation and divider droop) at ``n_points`` evenly
        spaced voltages — or an explicit list — and builds the lookup
        table in NVM.
        """
        try:
            table_cls = _STRATEGIES[strategy]
        except KeyError:
            raise CalibrationError(
                f"unknown strategy {strategy!r}; choose from {sorted(_STRATEGIES)}"
            ) from None
        v_lo, v_hi = self.config.v_supply_range
        if voltages is None:
            n = n_points if n_points is not None else self.config.nvm_entries
            if strategy == "full":
                # One voltage per achievable count: dense sweep.
                n = max(n, 4 * (self.count_at(v_hi) - self.count_at(v_lo) + 1))
            voltages = evenly_spaced_voltages(v_lo, v_hi, n)
        points = enroll_points(self.count_at, voltages)
        self.table = table_cls(points, entry_bits=self.config.entry_bits, v_range=(v_lo, v_hi))
        return self.table

    def enroll_compensated(
        self,
        temperatures_c: Sequence[float] = (25.0, 75.0),
        strategy: str = "linear",
        n_points: Optional[int] = None,
    ) -> TemperatureCompensatedTable:
        """Multi-temperature enrollment (thermal-chamber characterization).

        Builds one table per characterization temperature; at run time,
        :meth:`read_voltage_at` blends the bracketing tables using a
        temperature estimate.  Addresses the divided-operating-point
        thermal sensitivity documented in EXPERIMENTS.md.
        """
        from repro.units import celsius_to_kelvin

        try:
            table_cls = _STRATEGIES[strategy]
        except KeyError:
            raise CalibrationError(
                f"unknown strategy {strategy!r}; choose from {sorted(_STRATEGIES)}"
            ) from None
        if len(temperatures_c) < 2:
            raise CalibrationError("compensated enrollment needs >= 2 temperatures")
        v_lo, v_hi = self.config.v_supply_range
        n = n_points if n_points is not None else self.config.nvm_entries
        voltages = evenly_spaced_voltages(v_lo, v_hi, n)
        tables = {}
        for temp_c in temperatures_c:
            temp_k = celsius_to_kelvin(temp_c)
            points = enroll_points(lambda v: self.count_at(v, temp_k=temp_k), voltages)
            tables[float(temp_c)] = table_cls(
                points, entry_bits=self.config.entry_bits, v_range=(v_lo, v_hi)
            )
        self.compensated_table = TemperatureCompensatedTable(tables)
        return self.compensated_table

    def read_voltage_at(self, count: int, temp_c: float) -> float:
        """Count-to-voltage conversion using the compensated table."""
        table = getattr(self, "compensated_table", None)
        if table is None:
            raise CalibrationError(
                "monitor has no compensated table; call enroll_compensated() first"
            )
        return table.lookup(count, temp_c)

    def read_voltage(self, count: int) -> float:
        """Software's count-to-voltage conversion via the NVM table."""
        if self.table is None:
            raise CalibrationError("monitor not enrolled; call enroll() first")
        return self.table.lookup(count)

    def measure(self, v_supply: float) -> float:
        """One-shot: sample then convert."""
        return self.read_voltage(self.sample(v_supply))

    def set_threshold(self, v_threshold: float) -> int:
        """Arm the interrupt comparator at a supply-voltage threshold.

        Converts the voltage to a count conservatively (the largest
        stored count whose voltage is at or below the threshold maps up;
        the interrupt must not fire late).  Returns the count threshold.
        """
        if self.table is None:
            raise CalibrationError("monitor not enrolled; call enroll() first")
        candidates = [p for p in self.table.points if p.voltage >= v_threshold]
        if candidates:
            # Smallest count at-or-above the threshold voltage: firing at
            # count <= this guarantees V <= threshold + one table step.
            self._threshold_count = min(p.count for p in candidates)
        else:
            self._threshold_count = self.table.points[-1].count
        self.interrupt_pending = False
        return self._threshold_count

    def clear_interrupt(self) -> None:
        self.interrupt_pending = False

    @property
    def threshold_count(self) -> Optional[int]:
        return self._threshold_count

    # ------------------------------------------------------------------
    # Power and area models
    # ------------------------------------------------------------------
    def enabled_current(self, v_supply: float) -> float:
        """Current while the enable is high (A)."""
        v_ro = self.ring_voltage(v_supply)
        f = self.ro.frequency(v_ro, self.temp_k)
        i_ro = self.ro.enabled_current(v_ro, self.temp_k)
        i_div = self.divider.bias_current(v_supply, self.temp_k)
        i_ls = self.level_shifter.dynamic_current(f, v_supply)
        # Counter: bit i toggles at f / 2^i; total toggle rate ~ 2 f.
        c_bit = _COUNTER_CAP_FACTOR * self.config.tech.c_switch
        i_counter = 2.0 * c_bit * v_supply * f
        return i_ro + i_div + i_ls + i_counter

    def static_current(self) -> float:
        """Leakage with the enable low (A): the whole block leaks."""
        return self.transistor_count() * self.config.tech.leak_per_transistor

    def mean_current(self, v_supply: float) -> float:
        """Duty-cycled average supply current (A).

        ``I = D * I_enabled + (1 - D) * I_static`` with
        ``D = T_en * F_s`` (Section III-E).
        """
        d = self.config.duty_cycle
        return d * self.enabled_current(v_supply) + (1.0 - d) * self.static_current()

    def transistor_count(self) -> int:
        """Total device count (Table III bounds this at 1000)."""
        return (
            self.ro.transistor_count()
            + self.divider.transistor_count()
            + 2 * self.level_shifter.transistor_count()  # output + enable paths
            + self.config.counter_bits * _TRANSISTORS_PER_COUNTER_BIT
            + self.config.counter_bits * _TRANSISTORS_PER_COMPARATOR_BIT
            + _CONTROL_TRANSISTORS
        )

    # ------------------------------------------------------------------
    # Accuracy
    # ------------------------------------------------------------------
    def error_budget(self, v_eval: Optional[float] = None) -> ErrorBudget:
        """Worst-case error budget (see :mod:`repro.core.errors_model`)."""
        return evaluate_error_budget(self.config, self.temp_k, v_eval=v_eval)

    def resolution_volts(self) -> float:
        """Total worst-case measurement error in the checkpoint region."""
        return self.error_budget().total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FailureSentinels {self.config.label()}>"
