"""Supply-referred sensitivity of a divided ring oscillator.

The monitor observes the *supply* through the divider, so what matters
for resolution is ``df/dV_supply = (df/dV_ro) * (tap/total)``.  These
helpers centralize that chain rule so the error budget, the DSE and the
experiments agree on it.
"""

from __future__ import annotations

from typing import Callable

from repro.analog.divider import VoltageDivider
from repro.analog.ring_oscillator import RingOscillator
from repro.units import ROOM_TEMP_K


def loaded_ring_voltage(
    ro: RingOscillator,
    divider: VoltageDivider,
    v_supply: float,
    temp_k: float = ROOM_TEMP_K,
    iterations: int = 12,
) -> float:
    """Divider tap voltage under the ring's own load.

    The implicit V_ro is resolved by damped fixed-point iteration
    (half-step averaging); the droop is 10-15% so the undamped map
    converges slowly.
    """
    v_ro = divider.nominal_output(v_supply)
    for _ in range(iterations):
        i_load = ro.dynamic_current(v_ro, temp_k)
        target = divider.loaded_output(v_supply, i_load, temp_k)
        v_ro = 0.5 * (v_ro + target)
    return v_ro


def monitor_frequency(
    ro: RingOscillator,
    divider: VoltageDivider,
    v_supply: float,
    temp_k: float = ROOM_TEMP_K,
    load_aware: bool = True,
    iterations: int = 12,
) -> float:
    """RO frequency as seen from the supply rail (Hz).

    With ``load_aware`` the ring's own draw droops the divider tap.
    """
    if not load_aware:
        return ro.frequency(divider.nominal_output(v_supply), temp_k)
    v_ro = loaded_ring_voltage(ro, divider, v_supply, temp_k, iterations)
    return ro.frequency(v_ro, temp_k)


def supply_sensitivity(
    ro: RingOscillator,
    divider: VoltageDivider,
    v_supply: float,
    temp_k: float = ROOM_TEMP_K,
    dv: float = 1e-3,
) -> float:
    """|df/dV_supply| at ``v_supply`` (Hz/V), droop-aware."""
    lo = monitor_frequency(ro, divider, v_supply - dv, temp_k)
    hi = monitor_frequency(ro, divider, v_supply + dv, temp_k)
    return abs(hi - lo) / (2 * dv)


def supply_relative_sensitivity(
    ro: RingOscillator,
    divider: VoltageDivider,
    v_supply: float,
    temp_k: float = ROOM_TEMP_K,
) -> float:
    """|d(ln f)/dV_supply| (1/V): what bounds temperature-induced
    voltage error (a 2% frequency wobble reads as 0.02/this volts)."""
    f = monitor_frequency(ro, divider, v_supply, temp_k)
    if f <= 0:
        return 0.0
    return supply_sensitivity(ro, divider, v_supply, temp_k) / f


def frequency_function(
    ro: RingOscillator,
    divider: VoltageDivider,
    temp_k: float = ROOM_TEMP_K,
) -> Callable[[float], float]:
    """Close over (ro, divider) as a plain V_supply -> frequency callable
    for the calibration error-bound machinery."""

    def f(v_supply: float) -> float:
        return monitor_frequency(ro, divider, v_supply, temp_k)

    return f
