"""Failure Sentinels: the paper's primary contribution.

A :class:`~repro.core.monitor.FailureSentinels` instance composes a ring
oscillator, a voltage divider, a level shifter, an edge counter, and an
enrollment table into a software-queriable supply-voltage monitor:

>>> from repro.core import FailureSentinels, FSConfig
>>> from repro.tech import TECH_90NM
>>> fs = FailureSentinels(FSConfig(tech=TECH_90NM, ro_length=7,
...                                counter_bits=8, t_enable=2e-6,
...                                f_sample=5e3))
>>> fs.enroll()                       # factory calibration
>>> count = fs.sample(v_supply=2.4)   # what the hardware counter reads
>>> fs.read_voltage(count)            # what software concludes
2.4...
"""

from repro.core.config import FSConfig
from repro.core.counter import EdgeCounter
from repro.core.calibration import (
    EnrollmentPoint,
    EnrollmentTable,
    FullEnrollment,
    PiecewiseConstant,
    PiecewiseLinear,
    PolynomialCalibration,
    TemperatureCompensatedTable,
    piecewise_constant_error_bound,
    piecewise_linear_error_bound,
)
from repro.core.errors_model import ErrorBudget
from repro.core.monitor import FailureSentinels
from repro.core.sensitivity import supply_sensitivity, supply_relative_sensitivity

__all__ = [
    "FSConfig",
    "EdgeCounter",
    "EnrollmentPoint",
    "EnrollmentTable",
    "FullEnrollment",
    "PiecewiseConstant",
    "PiecewiseLinear",
    "PolynomialCalibration",
    "TemperatureCompensatedTable",
    "piecewise_constant_error_bound",
    "piecewise_linear_error_bound",
    "ErrorBudget",
    "FailureSentinels",
    "supply_sensitivity",
    "supply_relative_sensitivity",
]
