"""Enrollment: mapping counter values back to supply voltage.

Process variation makes every chip's count-to-voltage curve unique, so
manufacturers characterize each device once against known supply
voltages and store calibration data in NVM (Section III-H).  The paper
weighs four strategies trading NVM footprint against accuracy and
run-time cost; all four are implemented here with a shared interface:

* :class:`FullEnrollment` — one entry per possible count; exact and
  fast, but maximal NVM/enrollment cost.
* :class:`PiecewiseConstant` — sparse points; an unknown count
  pessimistically maps to the nearest *stored count below* (conservative
  for checkpointing: never overestimates available voltage).
* :class:`PiecewiseLinear` — sparse points with linear interpolation
  between neighbours; better accuracy per byte, slightly more math.
* :class:`PolynomialCalibration` — regression coefficients only;
  negligible NVM, but evaluation needs floating-point multiplies that
  are expensive on harvester-class MCUs.

Equations 3 and 4's analytic error bounds are provided as functions so
the design-space exploration can size tables without simulating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError

#: Run-time cost of one lookup, in abstract MCU operations.  Used by the
#: experiments to rank strategies the way Section III-H does.
LOOKUP_COST_OPS = {
    "full": 1,          # direct index
    "constant": 8,      # binary search + index
    "linear": 14,       # binary search + one mul/div blend
}


@dataclass(frozen=True)
class EnrollmentPoint:
    """One stored calibration sample: this chip produced ``count`` at
    ``voltage`` during factory characterization."""

    count: int
    voltage: float


def quantize_voltage(voltage: float, v_lo: float, v_hi: float, entry_bits: int) -> float:
    """Snap a voltage to an ``entry_bits``-wide code over [v_lo, v_hi].

    Storage precision limits accuracy (Figure 4's dashed line): with
    8-bit entries over a 1.8 V range no scheme can beat ~7 mV.
    """
    if entry_bits < 1:
        raise CalibrationError("entry_bits must be >= 1")
    if v_hi <= v_lo:
        raise CalibrationError("voltage range is empty")
    levels = (1 << entry_bits) - 1
    frac = (voltage - v_lo) / (v_hi - v_lo)
    code = round(max(0.0, min(1.0, frac)) * levels)
    return v_lo + code * (v_hi - v_lo) / levels


def entry_precision_floor(v_lo: float, v_hi: float, entry_bits: int) -> float:
    """Best-case error from finite entry width: range / 2^bits."""
    return (v_hi - v_lo) / (1 << entry_bits)


class EnrollmentTable:
    """Base class: a sorted list of (count, voltage) points.

    Subclasses implement :meth:`lookup`.  ``entry_bits`` optionally
    quantizes stored voltages, modelling NVM entry width.
    """

    strategy = "abstract"

    def __init__(
        self,
        points: Sequence[EnrollmentPoint],
        entry_bits: Optional[int] = None,
        v_range: Optional[Tuple[float, float]] = None,
    ):
        if not points:
            raise CalibrationError("enrollment needs at least one point")
        ordered = sorted(points, key=lambda p: p.count)
        for a, b in zip(ordered, ordered[1:]):
            if a.count == b.count:
                raise CalibrationError(f"duplicate enrollment count {a.count}")
        if entry_bits is not None:
            if v_range is None:
                volts = [p.voltage for p in ordered]
                v_range = (min(volts), max(volts))
            v_lo, v_hi = v_range
            if v_hi <= v_lo:
                # Single-point table: nothing to quantize against.
                v_hi = v_lo + 1e-9
            ordered = [
                EnrollmentPoint(p.count, quantize_voltage(p.voltage, v_lo, v_hi, entry_bits))
                for p in ordered
            ]
        self.points: List[EnrollmentPoint] = ordered
        self.entry_bits = entry_bits

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    @property
    def counts(self) -> List[int]:
        return [p.count for p in self.points]

    @property
    def voltages(self) -> List[float]:
        return [p.voltage for p in self.points]

    def nvm_bytes(self) -> float:
        bits = self.entry_bits if self.entry_bits is not None else 16
        return len(self.points) * bits / 8.0

    def lookup(self, count: int) -> float:
        raise NotImplementedError

    def lookup_cost_ops(self) -> int:
        return LOOKUP_COST_OPS.get(self.strategy, 1)

    def _bracket(self, count: int) -> Tuple[EnrollmentPoint, EnrollmentPoint]:
        """Neighbouring stored points around ``count`` (clamped)."""
        pts = self.points
        if count <= pts[0].count:
            return pts[0], pts[0]
        if count >= pts[-1].count:
            return pts[-1], pts[-1]
        lo, hi = 0, len(pts) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if pts[mid].count <= count:
                lo = mid
            else:
                hi = mid
        return pts[lo], pts[hi]


class FullEnrollment(EnrollmentTable):
    """A voltage for every possible count — indexing only."""

    strategy = "full"

    def lookup(self, count: int) -> float:
        below, above = self._bracket(count)
        if below.count == count:
            return below.voltage
        if above.count == count:
            return above.voltage
        raise CalibrationError(
            f"count {count} absent from full enrollment table "
            f"[{self.points[0].count}, {self.points[-1].count}]"
        )


class PiecewiseConstant(EnrollmentTable):
    """Sparse table; unknown counts floor to the stored count below.

    Pessimistic by design: the reported voltage never exceeds the true
    one, so a checkpoint threshold is never missed (Section III-H).
    """

    strategy = "constant"

    def lookup(self, count: int) -> float:
        below, _above = self._bracket(count)
        return below.voltage


class PiecewiseLinear(EnrollmentTable):
    """Sparse table with linear interpolation between neighbours."""

    strategy = "linear"

    def lookup(self, count: int) -> float:
        below, above = self._bracket(count)
        if above.count == below.count:
            return below.voltage
        frac = (count - below.count) / (above.count - below.count)
        return below.voltage + frac * (above.voltage - below.voltage)


class PolynomialCalibration:
    """Regression calibration: store only polynomial coefficients.

    Fit count -> voltage with a least-squares polynomial.  NVM cost is
    ``(degree + 1) * coeff_bits / 8`` bytes; evaluation needs ``degree``
    multiply-accumulates of float math (Horner), which the paper flags
    as expensive on harvester-class MCUs.
    """

    strategy = "polynomial"

    def __init__(self, points: Sequence[EnrollmentPoint], degree: int = 3, coeff_bits: int = 32):
        if len(points) < degree + 1:
            raise CalibrationError(
                f"degree-{degree} fit needs >= {degree + 1} points, got {len(points)}"
            )
        self.degree = degree
        self.coeff_bits = coeff_bits
        counts = np.array([p.count for p in points], dtype=float)
        volts = np.array([p.voltage for p in points], dtype=float)
        # Normalize counts to [0, 1] for numerical stability.
        self._c_lo = float(counts.min())
        self._c_span = float(max(counts.max() - counts.min(), 1.0))
        x = (counts - self._c_lo) / self._c_span
        self.coefficients = np.polyfit(x, volts, degree)

    def lookup(self, count: int) -> float:
        x = (count - self._c_lo) / self._c_span
        return float(np.polyval(self.coefficients, x))

    def nvm_bytes(self) -> float:
        return (self.degree + 1) * self.coeff_bits / 8.0

    def lookup_cost_ops(self) -> int:
        """Horner evaluation: one MAC per degree, ~10 ops each on a
        soft-float 16-bit MCU."""
        return 10 * self.degree


# ----------------------------------------------------------------------
# Enrollment drivers
# ----------------------------------------------------------------------
def enroll_points(
    count_of_voltage: Callable[[float], int],
    voltages: Sequence[float],
) -> List[EnrollmentPoint]:
    """Characterize a device: sample its counter at known voltages.

    Duplicate counts (two voltages quantizing to the same count) keep
    the *lower* voltage — conservative for threshold use.
    """
    by_count = {}
    for v in sorted(voltages):
        c = count_of_voltage(v)
        if c not in by_count:
            by_count[c] = v
    return [EnrollmentPoint(c, v) for c, v in sorted(by_count.items())]


def evenly_spaced_voltages(v_lo: float, v_hi: float, n_points: int) -> List[float]:
    """The paper's evenly spaced enrollment voltages (footnote 8)."""
    if n_points < 1:
        raise CalibrationError("need at least one enrollment point")
    if n_points == 1:
        return [v_lo]
    step = (v_hi - v_lo) / (n_points - 1)
    return [v_lo + i * step for i in range(n_points)]


# ----------------------------------------------------------------------
# Analytic error bounds (Equations 3 and 4)
# ----------------------------------------------------------------------
def piecewise_constant_error_bound(max_abs_dfdx: float, h: float) -> float:
    """Equation 3: ``E <= h * max|f'(x)|``."""
    if h < 0:
        raise CalibrationError("spacing h must be non-negative")
    return h * max_abs_dfdx


def piecewise_linear_error_bound(max_abs_d2fdx2: float, h: float) -> float:
    """Equation 4: ``E <= h^2 / 8 * max|f''(x)|``."""
    if h < 0:
        raise CalibrationError("spacing h must be non-negative")
    return h * h / 8.0 * max_abs_d2fdx2


def voltage_of_frequency_derivatives(
    frequency_of_voltage: Callable[[float], float],
    v_lo: float,
    v_hi: float,
    samples: int = 201,
) -> Tuple[float, float, float, float]:
    """Derivative extrema of the *inverse* map f: frequency -> voltage.

    Returns ``(f_min, f_max, max|dV/df|, max|d2V/df2|)`` over the
    frequency range swept out by [v_lo, v_hi].  These feed Equations
    3/4, whose ``f(x)`` is the frequency-to-voltage transfer function.
    """
    if samples < 5:
        raise CalibrationError("need >= 5 samples for derivative estimates")
    volts = np.linspace(v_lo, v_hi, samples)
    freqs = np.array([frequency_of_voltage(float(v)) for v in volts])
    if np.any(np.diff(freqs) <= 0):
        raise CalibrationError(
            "frequency-voltage map is not strictly increasing over "
            f"[{v_lo}, {v_hi}] V; operate the ring in its monotonic region"
        )
    dv_df = np.gradient(volts, freqs)
    d2v_df2 = np.gradient(dv_df, freqs)
    return (
        float(freqs[0]),
        float(freqs[-1]),
        float(np.max(np.abs(dv_df))),
        float(np.max(np.abs(d2v_df2))),
    )


def measured_max_error(
    table,
    count_of_voltage: Callable[[float], int],
    v_lo: float,
    v_hi: float,
    samples: int = 400,
) -> float:
    """Empirical max |lookup(count(V)) - V| over a dense voltage sweep.

    Complements the analytic bounds; tests assert measured <= bound.
    """
    worst = 0.0
    for i in range(samples):
        v = v_lo + i * (v_hi - v_lo) / (samples - 1)
        estimate = table.lookup(count_of_voltage(v))
        worst = max(worst, abs(estimate - v))
    return worst


class TemperatureCompensatedTable:
    """Enrollment at several temperatures with runtime interpolation.

    The reproduction's thermal finding (see EXPERIMENTS.md): at the
    divided operating point the ring's temperature sensitivity is far
    larger than the paper's full-supply 2% bound, so a single-point
    enrollment mis-reads badly across a wide thermal swing.  The fix is
    classic: characterize the device at two or more known temperatures
    and interpolate between the stored tables using a runtime
    temperature estimate (harvester-class MCUs ship an on-die sensor).

    NVM cost scales with the number of enrollment temperatures; lookup
    adds one blend.
    """

    strategy = "temperature-compensated"

    def __init__(self, tables: "dict[float, EnrollmentTable]"):
        if len(tables) < 2:
            raise CalibrationError("need tables at >= 2 temperatures")
        self._temps = sorted(tables)
        self._tables = dict(tables)

    @property
    def temperatures(self) -> "List[float]":
        return list(self._temps)

    def lookup(self, count: int, temp_c: float) -> float:
        """Blend the two bracketing temperature tables linearly."""
        temps = self._temps
        if temp_c <= temps[0]:
            return self._tables[temps[0]].lookup(count)
        if temp_c >= temps[-1]:
            return self._tables[temps[-1]].lookup(count)
        hi_index = next(i for i, t in enumerate(temps) if t >= temp_c)
        lo_t, hi_t = temps[hi_index - 1], temps[hi_index]
        frac = (temp_c - lo_t) / (hi_t - lo_t)
        lo_v = self._tables[lo_t].lookup(count)
        hi_v = self._tables[hi_t].lookup(count)
        return lo_v + frac * (hi_v - lo_v)

    def nvm_bytes(self) -> float:
        return sum(t.nvm_bytes() for t in self._tables.values())

    def lookup_cost_ops(self) -> int:
        any_table = next(iter(self._tables.values()))
        # Two table lookups plus the blend.
        return 2 * any_table.lookup_cost_ops() + 6
