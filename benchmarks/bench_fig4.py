"""Regenerate Figure 4: interpolation error vs NVM overhead."""

from repro.experiments import fig4


def test_fig4(benchmark, record_experiment):
    result = benchmark(fig4.run)
    record_experiment(result, "fig4")
    for row in result.rows:
        assert row["linear_bound_mv"] < row["const_bound_mv"]
