"""Regenerate Table I: core vs ADC/comparator current."""

from repro.experiments import table1


def test_table1(benchmark, record_experiment):
    result = benchmark(table1.run)
    record_experiment(result, "table1")
    rows = {r["platform"]: r for r in result.rows}
    assert rows["MSP430FR5969"]["adc_ua"] == 265
