"""SPICE fast-path speedup: the ``repro.spice`` acceptance benchmark.

Runs the fig1-shaped workload — a ring-oscillator frequency/current
sweep over supply voltage — through the legacy-equivalent baseline
(finite-difference Jacobian, fixed full-horizon transient) and the fast
path (analytic device stamps + period-converged early exit), asserting
the curves agree within the documented ``CHARLIB_RTOL`` and the
headline >=3x speedup.  A second section times a repeat run against a
warm on-disk characterization cache (>=10x floor).  Results land in
``benchmarks/results/spice_speedup.txt`` (CI uploads the directory as
an artifact and fails the job if any equivalence assertion fails).
"""

import time

import pytest

pytest.importorskip("numpy")

from repro.spice.charlib import (
    CHARLIB_RTOL,
    CharacterizationCache,
    RingSweep,
    characterize_many,
)
from repro.tech import TECH_90NM

SPEEDUP_FLOOR = 3.0
WARM_CACHE_FLOOR = 10.0

#: The fig1 operating region for the divided ring: steep, monotonic.
VOLTAGES = (0.7, 0.8, 0.9, 1.0, 1.1, 1.2)
N_STAGES = 5


def _sweep(**overrides) -> RingSweep:
    params = dict(tech=TECH_90NM, n_stages=N_STAGES, voltages=VOLTAGES)
    params.update(overrides)
    return RingSweep(**params)


def _cold_run(sweep):
    cold = CharacterizationCache(enabled=False)
    start = time.perf_counter()
    [result] = characterize_many([sweep], cache=cold)
    return time.perf_counter() - start, result


def test_spice_speedup(results_dir, tmp_path):
    # Warm imports/allocators off the clock.
    _cold_run(_sweep(voltages=(0.9,)))

    baseline_sweep = _sweep(jacobian="fd", early_exit=False)
    fast_sweep = _sweep()

    # Interleave best-of-3 so a load spike cannot land on one side only.
    t_base = t_fast = float("inf")
    baseline = fast = None
    for _ in range(3):
        elapsed, baseline = _cold_run(baseline_sweep)
        t_base = min(t_base, elapsed)
        elapsed, fast = _cold_run(fast_sweep)
        t_fast = min(t_fast, elapsed)
    speedup = t_base / t_fast

    worst = 0.0
    for f_base, f_fast in zip(baseline.frequency, fast.frequency):
        assert f_base > 0 and f_fast > 0, "ring must oscillate at every sweep point"
        worst = max(worst, abs(f_fast - f_base) / f_base)
    for i_base, i_fast in zip(baseline.current, fast.current):
        worst = max(worst, abs(i_fast - i_base) / abs(i_base))

    # Warm-cache section: cold fill into a fresh disk cache, then repeat.
    cache = CharacterizationCache(cache_dir=str(tmp_path / "charlib"))
    start = time.perf_counter()
    characterize_many([fast_sweep], cache=cache)
    t_fill = time.perf_counter() - start
    start = time.perf_counter()
    characterize_many([fast_sweep], cache=cache)
    t_warm = time.perf_counter() - start
    warm_speedup = t_fill / max(t_warm, 1e-9)

    lines = [
        "spice fast path vs fd/fixed-horizon baseline (fig1 RO sweep)",
        f"  sweep: {N_STAGES}-stage ring, {TECH_90NM.name}, "
        f"{len(VOLTAGES)} voltages {VOLTAGES[0]:.1f}-{VOLTAGES[-1]:.1f} V",
        f"  baseline (fd, full horizon)   {t_base * 1e3:9.1f} ms",
        f"  fast (stamp, early exit)      {t_fast * 1e3:9.1f} ms  "
        f"speedup {speedup:5.2f}x  (floor {SPEEDUP_FLOOR:.1f}x)",
        f"  worst curve disagreement      {worst:.2e}  (tolerance {CHARLIB_RTOL:.0e})",
        f"  cache fill                    {t_fill * 1e3:9.1f} ms",
        f"  warm cache repeat             {t_warm * 1e3:9.3f} ms  "
        f"speedup {warm_speedup:7.0f}x  (floor {WARM_CACHE_FLOOR:.0f}x)",
    ]
    (results_dir / "spice_speedup.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")
    print("\n" + "\n".join(lines))

    assert worst <= CHARLIB_RTOL, (
        f"fast-path curves diverge {worst:.2e} from baseline — "
        f"above the documented {CHARLIB_RTOL} tolerance"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"spice fast path {speedup:.2f}x — below the {SPEEDUP_FLOOR:.1f}x acceptance floor"
    )
    assert warm_speedup >= WARM_CACHE_FLOOR, (
        f"warm charlib cache {warm_speedup:.1f}x — below the {WARM_CACHE_FLOOR:.0f}x floor"
    )
