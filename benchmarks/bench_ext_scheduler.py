"""Extension bench: energy-aware task scheduling (Dewdrop/HarvOS)."""

from repro.experiments import ext_scheduler


def test_ext_scheduler(benchmark, record_experiment):
    result = benchmark.pedantic(ext_scheduler.run, rounds=1, iterations=1)
    record_experiment(result, "ext_scheduler")
    rows = {r["scheduler"]: r for r in result.rows}
    assert rows["energy-aware"]["tasks_killed"] == 0
    assert rows["energy-aware"]["tasks_completed"] > 2 * rows["blind"]["tasks_completed"]
