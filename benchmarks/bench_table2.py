"""Regenerate Table II: SoC integration overheads."""

from repro.experiments import table2


def test_table2(benchmark, record_experiment):
    result = benchmark(table2.run)
    record_experiment(result, "table2")
    base, fs = result.rows
    assert fs["area_overhead_pct"] < 0.1
