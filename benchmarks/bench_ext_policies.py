"""Extension bench: checkpoint-policy comparison (Section II-C)."""

from repro.experiments import ext_policies


def test_ext_policies(benchmark, record_experiment):
    result = benchmark.pedantic(ext_policies.run, rounds=1, iterations=1)
    record_experiment(result, "ext_policies")
    rows = {r["policy"]: r for r in result.rows}
    assert all(r["completed"] for r in result.rows)
    # FS-driven policies lose no work; blind ones re-execute.
    assert rows["just-in-time (FS)"]["power_failures"] == 0
    assert rows["timer + FS"]["power_failures"] == 0
    assert rows["continuous"]["checkpoints"] > 2 * rows["just-in-time (FS)"]["checkpoints"]
