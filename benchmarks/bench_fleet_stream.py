"""Streaming fleet bench: flat memory and sketch-vs-exact agreement.

The whole point of ``repro.fleet.stream`` is that aggregation state does
not grow with fleet size.  This bench asserts it directly: tracemalloc
peak while folding 100k device results stays within 2x of the 10k peak
(both are dominated by the fixed-capacity percentile reservoirs).  A
small end-to-end streaming run then writes its report to
``benchmarks/results/fleet_stream.txt`` and checks the sketch agrees
with the exact runner bit for bit.
"""

import random
import tracemalloc

from repro.fleet import FleetRunner, FleetSketch, synthesize_fleet
from repro.fleet.report import DeviceResult

MONITORS = ("FS (LP)", "FS (HP)", "Comparator", "ADC")


def synthetic_results(n: int, seed: int = 0):
    """Plausible DeviceResults, one at a time (nothing materialized)."""
    rng = random.Random(seed)
    for i in range(n):
        duration = 300.0
        app_time = rng.uniform(0.0, 0.4) * duration
        yield DeviceResult(
            device_id=i,
            monitor_name=MONITORS[i % len(MONITORS)],
            policy=("jit", "guarded")[i % 2],
            engine="fast",
            duration=duration,
            app_time=app_time,
            checkpoint_time=rng.uniform(0.0, 2.0),
            restore_time=rng.uniform(0.0, 1.0),
            off_time=duration - app_time,
            checkpoints=rng.randrange(0, 40),
            power_failures=rng.randrange(0, 3),
            v_checkpoint=rng.uniform(1.8, 3.4),
            energy_by_sink=(
                ("core", rng.uniform(0.5e-3, 3e-3)),
                ("monitor", rng.uniform(1e-5, 3e-4)),
            ),
            energy_harvested=rng.uniform(1e-3, 5e-3),
        )


def folded_peak(n: int) -> int:
    """tracemalloc peak (bytes) while folding n results into a sketch."""
    tracemalloc.start()
    try:
        sketch = FleetSketch()
        for result in synthetic_results(n):
            sketch.update(result)
        assert sketch.count == n
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_aggregation_memory_flat_in_fleet_size():
    """100k devices must not need (much) more memory than 10k."""
    peak_small = folded_peak(10_000)
    peak_large = folded_peak(100_000)
    assert peak_large < 2 * peak_small, (
        f"sketch aggregation memory grew with fleet size: "
        f"10k peak={peak_small / 1e6:.2f} MB, 100k peak={peak_large / 1e6:.2f} MB"
    )


def test_stream_end_to_end(benchmark, results_dir):
    """A real sharded run: report written out, exact agreement checked."""
    fleet = synthesize_fleet(48, seed=13, duration=30.0)
    out = benchmark.pedantic(
        lambda: FleetRunner(fleet, parallel=1).run_streaming(shard_size=16),
        rounds=1,
        iterations=1,
    )
    exact = FleetRunner(fleet, parallel=1).run().report
    for metric in ("duty_pct", "app_time", "checkpoints", "power_failures"):
        assert out.report.stats(metric) == exact.stats(metric)
    assert out.report.energy_rollup() == exact.energy_rollup()
    assert out.shards == 3

    sampled = FleetRunner(fleet, parallel=1).run_streaming(
        shard_size=16, sample=0.5, sample_seed=1
    )
    text = "\n".join(
        [
            out.report.render(),
            f"({out.devices_simulated} devices, {out.shards} shards, "
            f"{out.elapsed:.2f}s; sketch == exact report bit-for-bit)",
            "",
            sampled.report.render(),
            f"({sampled.devices_simulated}/{sampled.devices_seen} devices simulated, "
            f"stratified 50% sample, {sampled.elapsed:.2f}s)",
        ]
    )
    (results_dir / "fleet_stream.txt").write_text(text + "\n", encoding="utf-8")


# ----------------------------------------------------------------------
# Record-mode overhead (docs/replay.md)
# ----------------------------------------------------------------------
RECORD_OVERHEAD_BUDGET = 0.05  # fraction of unrecorded wall time

_OVERHEAD_DEVICES = 96
_OVERHEAD_ROUNDS = 3  # best-of, to shed scheduler noise


def _stream_elapsed(cache, record_path=None):
    """One streaming run, optionally recorded straight to disk (the
    ``keep_events=False`` mode a 10^7-device capture would use)."""
    import time

    from repro.fleet import iter_synthesized_devices, stream_fleet
    from repro.trace import TraceRecorder

    recorder = (
        TraceRecorder(path=record_path, keep_events=False) if record_path else None
    )
    devices = iter_synthesized_devices(_OVERHEAD_DEVICES, seed=7, duration=30.0)
    start = time.perf_counter()
    stream_fleet(
        devices,
        name="overhead-bench",
        parallel=1,
        shard_size=32,
        cache=cache,
        record=recorder,
    )
    return time.perf_counter() - start


def test_record_overhead_under_5pct(results_dir, tmp_path):
    """``record=`` must stay a rounding error on top of simulation."""
    from repro.fleet import CalibrationCache
    from repro.trace import Recording

    cache = CalibrationCache()
    _stream_elapsed(cache)  # warm the calibration cache + JITs

    plain = min(_stream_elapsed(cache) for _ in range(_OVERHEAD_ROUNDS))
    path = str(tmp_path / "overhead.jsonl")
    recorded = min(
        _stream_elapsed(cache, record_path=path) for _ in range(_OVERHEAD_ROUNDS)
    )
    overhead = recorded / plain - 1.0

    # The capture really happened and is loadable.
    recording = Recording.load(path)
    assert sum(e.kind == "device" for e in recording.events) == _OVERHEAD_DEVICES

    (results_dir / "replay_overhead.txt").write_text(
        f"record-mode overhead on stream_fleet ({_OVERHEAD_DEVICES} devices, "
        f"best of {_OVERHEAD_ROUNDS})\n"
        f"  unrecorded : {plain:.4f} s\n"
        f"  recorded   : {recorded:.4f} s (streaming JSONL, keep_events=False)\n"
        f"  overhead   : {overhead * 100:+.2f}% (budget {RECORD_OVERHEAD_BUDGET:.0%})\n"
        f"  events     : {len(recording.events)}\n",
        encoding="utf-8",
    )
    assert overhead < RECORD_OVERHEAD_BUDGET, (
        f"record= overhead {overhead * 100:.2f}% exceeds the "
        f"{RECORD_OVERHEAD_BUDGET:.0%} budget ({plain:.4f}s -> {recorded:.4f}s)"
    )
