"""RISC-V engine speedup: the ``repro.riscv.engine`` acceptance benchmark.

Runs table4-style workloads (the paper's Section IV-B kernels) through
the legacy per-step interpreter and the fast predecoded basic-block
engine on identical intermittent scenarios, asserting

* **byte-identical results** — every ``IntermittentRunResult`` field,
  plus the runtime's checkpoint/restore counters, must match exactly;
* the headline **>=5x speedup** on the fletcher kernel (the longest
  table4 workload) across several power cycles;
* **differential checkpoints** preserve program semantics while writing
  strictly fewer bytes per checkpoint than the full-image cost model.

Results land in ``benchmarks/results/riscv_speedup.txt`` (CI uploads
the directory as an artifact).
"""

import dataclasses
import time

from repro.harvest.traces import constant_trace
from repro.riscv import IntermittentMachine, get_workload

SPEEDUP_FLOOR = 5.0

#: (workload, capacitance) — fletcher is the headline: ~400k retired
#: instructions forcing several power cycles at 10 uF.
CASES = (
    ("crc32", 10e-6),
    ("bitcount", 10e-6),
    ("fletcher", 10e-6),
)
HEADLINE = "fletcher"

TRACE_SECONDS = 7200.0


def _run(workload, capacitance, engine, differential=False):
    machine = IntermittentMachine(
        workload.assemble(),
        capacitance=capacitance,
        engine=engine,
        differential_checkpoints=differential,
    )
    trace = constant_trace(1.0, TRACE_SECONDS)
    result = machine.run(trace=trace, max_wall_time=TRACE_SECONDS)
    counters = (
        machine.runtime.checkpoints_taken,
        machine.runtime.restores_done,
        machine.memory.nvm_bytes_written,
    )
    return result, counters


def _time_pair(legacy_fn, fast_fn, repeats=3):
    """Best-of-N with the two engines interleaved, so a transient load
    spike on the box cannot land on every sample of one side."""
    t_legacy = t_fast = float("inf")
    legacy = fast = None
    for _ in range(repeats):
        start = time.perf_counter()
        legacy = legacy_fn()
        t_legacy = min(t_legacy, time.perf_counter() - start)
        start = time.perf_counter()
        fast = fast_fn()
        t_fast = min(t_fast, time.perf_counter() - start)
    return t_legacy, legacy, t_fast, fast


def _assert_identical(name, legacy_pair, fast_pair):
    legacy, legacy_counters = legacy_pair
    fast, fast_counters = fast_pair
    mismatched = [
        field.name
        for field in dataclasses.fields(type(legacy))
        if getattr(legacy, field.name) != getattr(fast, field.name)
    ]
    assert not mismatched, f"{name}: engines disagree on {mismatched}"
    assert legacy_counters == fast_counters, (
        f"{name}: checkpoint/restore accounting diverged "
        f"(legacy {legacy_counters}, fast {fast_counters})"
    )


def test_riscv_engine_speedup(results_dir):
    # Warm both paths (imports, assembler) off the clock.
    warm = get_workload("sense")
    _run(warm, 47e-6, "legacy")
    _run(warm, 47e-6, "fast")

    lines = ["riscv fast engine vs legacy step interpreter (table4 workloads)"]
    speedups = {}
    for name, capacitance in CASES:
        workload = get_workload(name)
        t_legacy, legacy_pair, t_fast, fast_pair = _time_pair(
            lambda w=workload, c=capacitance: _run(w, c, "legacy"),
            lambda w=workload, c=capacitance: _run(w, c, "fast"),
        )
        _assert_identical(name, legacy_pair, fast_pair)
        result = fast_pair[0]
        assert result.completed, f"{name} did not finish: {result.summary()}"
        assert result.exit_code == workload.expected_exit_code()
        speedups[name] = t_legacy / t_fast
        lines.append(
            f"  {name:<9s} legacy {t_legacy * 1e3:8.1f} ms  "
            f"fast {t_fast * 1e3:8.1f} ms  speedup {speedups[name]:5.2f}x  "
            f"({result.instructions} insns, {result.power_cycles} power cycles, "
            f"{result.checkpoints} checkpoints)"
        )

    # Differential checkpoints: same program outcome, cheaper persists.
    workload = get_workload(HEADLINE)
    full, _ = _run(workload, 10e-6, "fast")
    diff, _ = _run(workload, 10e-6, "fast", differential=True)
    assert diff.completed and diff.exit_code == full.exit_code
    assert diff.checkpoints > 0
    per_full = full.checkpoint_time / full.checkpoints
    per_diff = diff.checkpoint_time / diff.checkpoints
    assert per_diff < per_full, "differential checkpoints are not cheaper"
    lines.append(
        f"  differential checkpoints: {per_diff * 1e3:.3f} ms/ckpt vs "
        f"{per_full * 1e3:.3f} ms full-image ({per_full / per_diff:.1f}x cheaper)"
    )

    lines.append(f"  floor: >={SPEEDUP_FLOOR:.1f}x on {HEADLINE}")
    (results_dir / "riscv_speedup.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")
    print("\n" + "\n".join(lines))

    assert speedups[HEADLINE] >= SPEEDUP_FLOOR, (
        f"fast engine {speedups[HEADLINE]:.2f}x on {HEADLINE} — "
        f"below the {SPEEDUP_FLOOR:.1f}x acceptance floor"
    )
