"""Extension bench: per-chip enrollment across a population."""

from repro.experiments import ext_enrollment


def test_ext_enrollment(benchmark, record_experiment):
    result = benchmark.pedantic(ext_enrollment.run, rounds=1, iterations=1)
    record_experiment(result, "ext_enrollment")
    nominal, enrolled = result.rows
    assert enrolled["max_mv"] < 0.2 * nominal["max_mv"]
