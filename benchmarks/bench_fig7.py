"""Regenerate Figure 7: RO frequency variation with temperature."""

from repro.experiments import fig7


def test_fig7(benchmark, record_experiment):
    result = benchmark(fig7.run)
    record_experiment(result, "fig7")
    for row in result.rows:
        for key, value in row.items():
            if key.endswith("_pct"):
                assert abs(value) < 1.5  # paper: ~1% max
