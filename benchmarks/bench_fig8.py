"""Regenerate Figure 8: application time normalized to ideal monitoring.

Replays the NYC night trace through the intermittent simulator once per
monitor (5 x 300 s at 1 ms steps) — the paper's headline system result.
"""

from repro.experiments import fig8


def test_fig8(benchmark, record_experiment):
    result = benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    record_experiment(result, "fig8")
    rows = {r["monitor"]: r for r in result.rows}
    assert rows["ADC"]["normalized"] < 0.4           # paper: ~0.30
    assert rows["Comparator"]["normalized"] < 0.9    # paper: ~0.76
    assert rows["FS (LP)"]["normalized"] > 0.97      # near-ideal
    assert rows["FS (HP)"]["normalized"] > 0.95
