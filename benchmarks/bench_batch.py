"""Batch-kernel speedup: the ``repro.batch`` acceptance benchmark.

Replays the DSE-shaped workload the kernel was built for — one shared
trace, many nearby platform designs — at N in {1, 16, 256} through the
scalar engine and the vectorized lockstep kernel, asserting bit-exact
agreement and the headline >=5x speedup at N=256.  Results land in
``benchmarks/results/batch_speedup.txt`` (CI uploads the directory as
an artifact).

Small N is *expected* to be near or below 1x — the kernel's
per-iteration numpy overhead only amortizes in bulk, which is exactly
why ``engine="auto"`` keeps inputs under ``AUTO_BATCH_MIN`` scalar.
"""

import time

import pytest

pytest.importorskip("numpy")

from repro.batch import Scenario, evaluate_many
from repro.harvest.monitors import (
    ADCMonitor,
    ComparatorMonitor,
    fs_high_performance_monitor,
    fs_low_power_monitor,
)
from repro.harvest.traces import nyc_pedestrian_night

SPEEDUP_FLOOR_256 = 5.0
SIZES = (1, 16, 256)

FIELDS = [
    "app_time", "checkpoint_time", "restore_time", "off_time",
    "checkpoints", "power_failures", "steps",
    "energy_harvested", "energy_in_capacitor",
]


def sweep_scenarios(n):
    """A capacitor/monitor sweep over one trace (the DSE hot loop)."""
    monitors = [
        fs_low_power_monitor(),
        fs_high_performance_monitor(),
        ComparatorMonitor(),
        ADCMonitor(),
    ]
    trace = nyc_pedestrian_night(60.0, seed=42)
    return [
        Scenario(
            monitor=monitors[i % 4],
            trace=trace,
            capacitance=47e-6 * (1 + 0.001 * (i // 4)),
        )
        for i in range(n)
    ]


def _time_once(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _time_pair(scalar_fn, batch_fn, repeats=5):
    """Best-of-N with the two paths interleaved, so a transient load
    spike on the box cannot land on every sample of one side."""
    t_scalar = t_batch = float("inf")
    scalar = batch = None
    for _ in range(repeats):
        elapsed, scalar = _time_once(scalar_fn)
        t_scalar = min(t_scalar, elapsed)
        elapsed, batch = _time_once(batch_fn)
        t_batch = min(t_batch, elapsed)
    return t_scalar, scalar, t_batch, batch


def test_batch_speedup(results_dir):
    # Warm both paths (imports, trace caches, numpy) off the clock.
    warm = sweep_scenarios(4)
    [s.run_scalar() for s in warm]
    evaluate_many(warm, engine="batch")

    lines = ["batch kernel vs scalar engine (DSE sweep workload)"]
    speedups = {}
    for n in SIZES:
        scenarios = sweep_scenarios(n)
        t_scalar, scalar, t_batch, batch = _time_pair(
            lambda: [s.run_scalar() for s in scenarios],
            lambda: evaluate_many(scenarios, engine="batch"),
        )

        mismatches = sum(
            1
            for a, b in zip(scalar, batch)
            for f in FIELDS
            if getattr(a, f) != getattr(b, f)
        )
        speedups[n] = t_scalar / t_batch
        lines.append(
            f"  N={n:4d}  scalar {t_scalar * 1e3:9.1f} ms  "
            f"batch {t_batch * 1e3:9.1f} ms  speedup {speedups[n]:5.2f}x  "
            f"mismatches {mismatches}"
        )
        assert mismatches == 0, f"N={n}: {mismatches} scalar/batch field mismatches"

    lines.append(f"  floor: >={SPEEDUP_FLOOR_256:.1f}x at N=256")
    (results_dir / "batch_speedup.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")
    print("\n" + "\n".join(lines))

    assert speedups[256] >= SPEEDUP_FLOOR_256, (
        f"batch kernel {speedups[256]:.2f}x at N=256 — "
        f"below the {SPEEDUP_FLOOR_256:.1f}x acceptance floor"
    )
