"""Regenerate Figure 1: RO frequency vs supply voltage."""

from repro.experiments import fig1


def test_fig1(benchmark, record_experiment):
    result = benchmark(fig1.run)
    record_experiment(result, "fig1")
    # Shape check: the 90nm 21-stage series rises then declines.
    series = [r["90nm_n21_mhz"] for r in result.rows]
    peak = max(series)
    assert series[-1] < peak
    assert series.index(peak) > 5
