"""Extension bench: the paper's future-work interconnect mitigation."""

from repro.experiments import ext_interconnect


def test_ext_interconnect(benchmark, record_experiment):
    result = benchmark(ext_interconnect.run)
    record_experiment(result, "ext_interconnect")
    base, *_rest, half = result.rows
    # Frequency deviation falls substantially with wire share...
    assert half["temp_deviation_pct"] < 0.7 * base["temp_deviation_pct"]
    # ...but the voltage-referred error barely moves (the honest finding).
    ratio = half["temp_voltage_error_mv"] / base["temp_voltage_error_mv"]
    assert 0.85 < ratio < 1.1
