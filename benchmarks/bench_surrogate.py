"""Surrogate characterization speedup: the ``engine=`` acceptance benchmark.

Builds the ISSUE-8 workload: a 10^5-point DSE-shaped query stream over
the divider's supply lattice, answered two ways against the *same*
warm characterization cache — ``engine="exact"`` (every query resolved
through the fingerprint + two-layer cache) and ``engine="auto"`` with a
certified surrogate covering the lattice.  Asserts the >=10x headline
floor, the certificate (fitted error <= tolerance, and every surrogate
answer within tolerance of the exact solve on the lattice), and that
``select_config(spice_validate=True)`` still runs its *exact* SPICE
cross-check with surrogate models present.  Results land in
``benchmarks/results/surrogate_speedup.txt`` (a CI artifact).
"""

import time

import pytest

pytest.importorskip("numpy")

from repro.dse.select import Requirements, select_config
from repro.spice.charlib import (
    CharacterizationCache,
    DividerSweep,
    characterize_many,
)
from repro.spice.surrogate import DEFAULT_TOLERANCE, fit_surrogate
from repro.tech import TECH_90NM

SPEEDUP_FLOOR = 10.0

#: Distinct supply points on the DSE lattice (each one exact solve to
#: warm the cache) and the total query-stream length.
LATTICE_POINTS = 256
TOTAL_QUERIES = 100_000
V_LO, V_HI = 1.0, 3.5


def _lattice():
    step = (V_HI - V_LO) / (LATTICE_POINTS - 1)
    return [
        DividerSweep(tech=TECH_90NM, voltages=(V_LO + i * step,))
        for i in range(LATTICE_POINTS)
    ]


def test_surrogate_speedup(results_dir, tmp_path):
    lattice = _lattice()
    # A DSE grid revisits the lattice: 10^5 queries over 256 designs.
    queries = [lattice[(i * 7919) % LATTICE_POINTS] for i in range(TOTAL_QUERIES)]

    cache = CharacterizationCache(cache_dir=str(tmp_path / "charlib"))
    start = time.perf_counter()
    exact_fill = characterize_many(lattice, engine="exact", cache=cache)
    t_fill = time.perf_counter() - start

    start = time.perf_counter()
    model = fit_surrogate(
        DividerSweep(tech=TECH_90NM, voltages=(V_LO, V_HI)), cache=cache
    )
    t_fit = time.perf_counter() - start
    assert model.certified_error <= model.tolerance

    # Exact warm baseline vs auto-dispatch, same cache, best-of-3
    # interleaved so a load spike cannot land on one side only.
    t_exact = t_auto = float("inf")
    exact_results = auto_results = None
    for _ in range(3):
        start = time.perf_counter()
        exact_results = characterize_many(queries, engine="exact", cache=cache)
        t_exact = min(t_exact, time.perf_counter() - start)
        start = time.perf_counter()
        auto_results = characterize_many(queries, engine="auto", cache=cache)
        t_auto = min(t_auto, time.perf_counter() - start)
    speedup = t_exact / t_auto

    assert all(r.source == "exact" for r in exact_results)
    assert all(r.source == "surrogate" for r in auto_results)

    # The certificate, checked against every exact lattice solve.
    worst = 0.0
    by_fp = {r.fingerprint: r for r in exact_results}
    for sweep, exact in zip(lattice, exact_fill):
        [sur] = characterize_many([sweep], engine="auto", cache=cache)
        for qty in ("tap", "current"):
            for got, want in zip(getattr(sur, qty), getattr(exact, qty)):
                denom = max(abs(want), 1e-3 * model.scales[qty])
                worst = max(worst, abs(got - want) / denom)

    # Pareto-winner validation stays exact with surrogate models around.
    selection = select_config(TECH_90NM, Requirements(), spice_validate=True)
    assert selection.spice_check is not None
    assert selection.spice_check["oscillates"]

    lines = [
        "surrogate characterization vs warm-cache exact (10^5-query DSE stream)",
        f"  lattice: {LATTICE_POINTS} divider points {V_LO:.1f}-{V_HI:.1f} V, "
        f"{TECH_90NM.name}; {TOTAL_QUERIES} queries",
        f"  exact cache fill              {t_fill * 1e3:9.1f} ms",
        f"  surrogate fit + certify       {t_fit * 1e3:9.1f} ms  "
        f"({len(model.v_anchors)} anchors, {model.cert_points} held-out solves, "
        f"error {model.certified_error:.2%})",
        f"  exact (warm cache)            {t_exact * 1e3:9.1f} ms",
        f"  auto (certified surrogate)    {t_auto * 1e3:9.1f} ms  "
        f"speedup {speedup:5.1f}x  (floor {SPEEDUP_FLOOR:.0f}x)",
        f"  worst lattice disagreement    {worst:.2e}  "
        f"(certified tolerance {DEFAULT_TOLERANCE:.0e})",
        "  select_config(spice_validate=True): exact cross-check ok",
    ]
    (results_dir / "surrogate_speedup.txt").write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )
    print("\n" + "\n".join(lines))

    assert worst <= DEFAULT_TOLERANCE, (
        f"surrogate curve diverges {worst:.2e} from exact on the lattice — "
        f"above the certified {DEFAULT_TOLERANCE} tolerance"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"surrogate dispatch {speedup:.1f}x over warm-cache exact — "
        f"below the {SPEEDUP_FLOOR:.0f}x acceptance floor"
    )
    assert len(by_fp) == LATTICE_POINTS
