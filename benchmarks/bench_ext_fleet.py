"""Extension bench: fleet-scale deployment simulation.

Beyond timing the ext_fleet experiment, this bench asserts the two
engineering claims the fleet layer makes: the shared calibration cache
is measurably faster than cold per-device enrollment, and parallel
execution is bit-for-bit equivalent to serial.
"""

import time

from repro.experiments import ext_fleet
from repro.fleet import CalibrationCache, FleetRunner, synthesize_fleet


def test_ext_fleet(benchmark, record_experiment):
    result = benchmark.pedantic(
        lambda: ext_fleet.run(include_planner=False), rounds=1, iterations=1
    )
    record_experiment(result, "ext_fleet")
    rows = {r["metric"]: r for r in result.rows}
    # Scarce night-time energy: duty cycles in the tens of percent at
    # most, and the percentile spread is real (heterogeneous fleet).
    assert 0.0 < rows["duty_pct"]["p50"] < 80.0
    assert rows["duty_pct"]["p95"] >= rows["duty_pct"]["p50"]
    assert rows["power_failures"]["mean"] == 0.0
    duty_rows = {r["metric"]: r for r in result.rows if r["metric"].startswith("duty_pct[")}
    # FS monitors beat the hungry ADC on delivered duty.
    assert duty_rows["duty_pct[FS (LP)]"]["mean"] > duty_rows["duty_pct[ADC]"]["mean"]


def test_calibration_cache_speedup():
    """Devices sharing a tech node + monitor design enroll once."""
    fleet = synthesize_fleet(32, seed=21, duration=60.0)

    def run_once(enabled: bool) -> float:
        start = time.perf_counter()
        FleetRunner(fleet, cache=CalibrationCache(enabled=enabled)).run()
        return time.perf_counter() - start

    # One warm-up to stabilise imports/allocator, then best-of-2 each.
    run_once(True)
    cached = min(run_once(True) for _ in range(2))
    uncached = min(run_once(False) for _ in range(2))
    assert cached < uncached, (
        f"shared calibration cache should be measurably faster: "
        f"cached={cached:.3f}s uncached={uncached:.3f}s"
    )


def test_parallel_matches_serial():
    fleet = synthesize_fleet(16, seed=22, duration=60.0)
    serial = FleetRunner(fleet, parallel=1).run()
    parallel = FleetRunner(fleet, parallel=2).run()
    assert serial.report.render() == parallel.report.render()
