"""Benchmark harness plumbing.

Each ``bench_*.py`` regenerates one of the paper's tables/figures under
pytest-benchmark timing and writes the rendered rows to
``benchmarks/results/<experiment>.txt`` so the artifacts survive the
run (EXPERIMENTS.md links to them).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_experiment(results_dir):
    """Save an ExperimentResult's rendering next to the benchmarks."""

    def _record(result, name: str = ""):
        stem = name or result.experiment_id.lower().replace(" ", "")
        path = results_dir / f"{stem}.txt"
        path.write_text(result.render() + "\n", encoding="utf-8")
        return result

    return _record
