"""Regenerate Table III: design/performance parameter bounds."""

from repro.experiments import table3


def test_table3(benchmark, record_experiment):
    result = benchmark(table3.run)
    record_experiment(result, "table3")
    assert len(result.rows) == 11
