"""Warm-cache payoff of the long-lived job service.

The whole point of ``repro serve`` over one-shot CLI invocations is
that the characterization and calibration caches live as long as the
*process*, not the request: the second identical job answers from the
warm cache instead of re-paying SPICE.  This bench submits the same
characterization job twice to one server and asserts the warm job is at
least ``MIN_SPEEDUP``x faster (the CI floor; locally it is typically
far higher), writing the measured numbers to
``benchmarks/results/serve_speedup.txt``.
"""

from __future__ import annotations

import time

from repro.serve import JobManager, ServeClient, ServerThread
from repro.serve.handlers import sweep_to_dict
from repro.spice.charlib import CharacterizationCache, RingSweep
from repro.tech import TECH_90NM

#: CI floor for warm/cold; the real ratio is bounded by how much of the
#: job is SPICE (here nearly all of it), typically 10x+.
MIN_SPEEDUP = 3.0

VOLTAGES = (0.7, 0.8, 0.9, 1.0, 1.1, 1.2)
N_STAGES = (5, 7, 9, 11)


def _request() -> dict:
    sweeps = [
        sweep_to_dict(RingSweep(tech=TECH_90NM, n_stages=n, voltages=VOLTAGES))
        for n in N_STAGES
    ]
    return {"sweeps": sweeps}


def test_serve_warm_cache_speedup(benchmark, results_dir):
    # Memory-only caches: the point is process-lifetime reuse, not the
    # on-disk store (which would let run N-1 contaminate run N).
    manager = JobManager(
        workers=1, characterization_cache=CharacterizationCache(cache_dir=None)
    )
    with ServerThread(manager=manager) as server:
        client = ServeClient(port=server.port)

        t0 = time.perf_counter()
        cold = client.result(client.submit("characterize", _request())["id"])
        cold_s = time.perf_counter() - t0

        def warm_job():
            return client.result(client.submit("characterize", _request())["id"])

        warm = benchmark.pedantic(warm_job, rounds=3, iterations=1)
        warm_s = benchmark.stats.stats.mean
        speedup = cold_s / warm_s

        assert cold["cache"]["misses"] == len(N_STAGES)
        assert warm["cache"] == {"hits": len(N_STAGES), "misses": 0}
        # Warm results are the same bytes the cold run produced.
        assert warm["results"] == cold["results"]

    lines = [
        "repro serve warm-cache speedup (same characterize job, twice)",
        f"  sweeps per job : {len(N_STAGES)} rings x {len(VOLTAGES)} voltages",
        f"  cold (1st job) : {cold_s * 1e3:9.1f} ms  ({len(N_STAGES)} SPICE sweeps)",
        f"  warm (2nd job) : {warm_s * 1e3:9.1f} ms  (all cache hits)",
        f"  speedup        : {speedup:9.1f}x  (CI floor {MIN_SPEEDUP:.0f}x)",
    ]
    (results_dir / "serve_speedup.txt").write_text("\n".join(lines) + "\n", encoding="utf-8")
    print("\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"warm serve job only {speedup:.1f}x faster than cold "
        f"(cold {cold_s:.3f}s, warm {warm_s:.3f}s)"
    )
