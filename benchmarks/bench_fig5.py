"""Regenerate Figure 5: the Pareto objective space in 90nm.

The heavy sweep runs once (pedantic single-round timing): ~24k grid
evaluations plus an NSGA-II pass.
"""

from repro.experiments import fig5


def test_fig5(benchmark, record_experiment):
    result = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    record_experiment(result, "fig5")
    grans = result.column("granularity_mv")
    currents = result.column("mean_current_ua")
    assert max(grans) <= 50
    assert max(currents) <= 5.0
