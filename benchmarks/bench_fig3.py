"""Regenerate Figure 3: frequency-voltage sensitivity."""

from repro.experiments import fig3


def test_fig3(benchmark, record_experiment):
    result = benchmark(fig3.run)
    record_experiment(result, "fig3")
    mid = [r for r in result.rows if abs(r["v_supply"] - 1.0) < 0.01][0]
    assert mid["90nm_n7"] > mid["90nm_n41"]
