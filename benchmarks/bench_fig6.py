"""Regenerate Figure 6: per-node Pareto fronts at Fs = 5 kHz."""

from repro.experiments import fig6


def test_fig6(benchmark, record_experiment):
    result = benchmark.pedantic(fig6.run, rounds=1, iterations=1)
    record_experiment(result, "fig6")
    bits = result.column("resolution_bits")
    assert max(bits) > 5.5  # paper: 5-6 bits
