"""Extension bench: 24 h diurnal study (fast semi-analytic engine)."""

from repro.experiments import ext_diurnal


def test_ext_diurnal(benchmark, record_experiment):
    result = benchmark.pedantic(ext_diurnal.run, rounds=1, iterations=1)
    record_experiment(result, "ext_diurnal")
    rows = {r["monitor"]: r for r in result.rows}
    # Abundant energy collapses the monitor penalty...
    assert rows["ADC"]["normalized"] > 0.95
    # ...but the ADC still thrashes through far more checkpoint cycles
    # at the light margins.
    assert rows["ADC"]["checkpoints"] > 3 * rows["Ideal"]["checkpoints"]
