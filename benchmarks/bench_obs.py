"""Observability overhead: disabled instrumentation must be ~free.

``repro.obs`` leaves its calls inline in solver and simulator code on
the promise that the disabled path costs a branch.  This bench holds it
to that: count every instrumentation call an *enabled* ext_fleet run
serves, price the disabled path per call with a microbenchmark, and
assert the product stays under 2% of the experiment's disabled runtime.

The analytic product is deliberately conservative — the enabled run
counts metric ops *and* span/event records, and each is charged the
full measured no-op cost — yet it still lands orders of magnitude under
the budget, which is the design working as intended.
"""

import time

import repro.obs as obs
from repro.experiments import ext_fleet
from repro.obs import MemorySink, Metrics, NullSink, Tracer

OVERHEAD_BUDGET = 0.02  # fraction of disabled-run wall time


def _noop_cost_per_call(iterations: int = 200_000) -> float:
    """Worst measured disabled cost across the instrumentation calls."""
    metrics = Metrics(enabled=False)
    tracer = Tracer(NullSink())
    costs = []
    for call in (
        lambda: metrics.incr("x"),
        lambda: metrics.observe("x", 1.0),
        lambda: tracer.event("x"),
        lambda: tracer.span("x"),
    ):
        start = time.perf_counter()
        for _ in range(iterations):
            call()
        costs.append((time.perf_counter() - start) / iterations)
    return max(costs)


def test_disabled_overhead_under_2pct(results_dir):
    # 1. The experiment with observability off (the library default).
    obs.reset()
    start = time.perf_counter()
    ext_fleet.run(include_planner=False)
    disabled_runtime = time.perf_counter() - start

    # 2. Count the instrumentation calls the same run would serve.
    sink = MemorySink()
    obs.configure(sink=sink, metrics=True)
    try:
        ext_fleet.run(include_planner=False)
        calls = obs.OBS.metrics.ops + len(sink.records)
    finally:
        obs.reset()

    # 3. Price the disabled path and compare against the budget.
    per_call = _noop_cost_per_call()
    projected = calls * per_call
    budget = OVERHEAD_BUDGET * disabled_runtime

    (results_dir / "obs_overhead.txt").write_text(
        "obs disabled-path overhead on ext_fleet\n"
        f"  disabled runtime : {disabled_runtime:.4f} s\n"
        f"  instrumented calls: {calls}\n"
        f"  cost per call     : {per_call * 1e9:.1f} ns\n"
        f"  projected overhead: {projected * 1e6:.1f} us "
        f"({projected / disabled_runtime * 100:.4f}% of runtime)\n"
        f"  budget            : {budget * 1e6:.1f} us (2%)\n",
        encoding="utf-8",
    )
    assert calls > 0, "enabled run served no instrumentation calls"
    assert projected < budget, (
        f"disabled obs path projected at {projected * 1e6:.1f}us over a "
        f"{disabled_runtime:.3f}s run — exceeds the 2% budget ({budget * 1e6:.1f}us)"
    )


def test_enabled_metrics_observe_the_fleet():
    """The enabled path actually sees the work (sanity for the count)."""
    obs.configure(sink=MemorySink(), metrics=True)
    try:
        ext_fleet.run(include_planner=False)
        m = obs.OBS.metrics
        assert m.counter("fleet.runs") >= 1
        assert m.counter("fleet.devices") > 0
        assert m.counter("harvest.runs") == m.counter("fleet.devices")
    finally:
        obs.reset()
