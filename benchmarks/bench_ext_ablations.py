"""Extension bench: design-choice ablations."""

from repro.experiments.ext_ablations import (
    calibration_ablation,
    divider_ablation,
    enable_time_ablation,
    inverter_cell_ablation,
)


def test_divider_ablation(benchmark, record_experiment):
    result = benchmark(divider_ablation)
    record_experiment(result, "ext_ablation_divider")
    divided, direct = result.rows
    assert divided["monotonic"] and not direct["monotonic"]
    assert divided["rel_sens_per_v"] > 3 * direct["rel_sens_per_v"]
    assert direct["enabled_current_ua"] > divided["enabled_current_ua"]


def test_calibration_ablation(benchmark, record_experiment):
    result = benchmark(calibration_ablation)
    record_experiment(result, "ext_ablation_calibration")
    rows = {r["strategy"]: r for r in result.rows}
    assert rows["piecewise-linear"]["max_error_mv"] < rows["piecewise-constant"]["max_error_mv"]
    assert rows["polynomial (deg 3)"]["nvm_bytes"] < rows["piecewise-linear"]["nvm_bytes"]
    assert rows["polynomial (deg 3)"]["lookup_ops"] > rows["piecewise-linear"]["lookup_ops"]


def test_enable_time_ablation(benchmark, record_experiment):
    result = benchmark(enable_time_ablation)
    record_experiment(result, "ext_ablation_enable_time")
    quant = [r["quantization_mv"] for r in result.rows]
    temp = [r["temperature_mv"] for r in result.rows]
    assert quant == sorted(quant, reverse=True)      # falls with T_en
    assert max(temp) - min(temp) < 0.1               # thermal floor fixed


def test_inverter_cell_ablation(benchmark, record_experiment):
    result = benchmark(inverter_cell_ablation)
    record_experiment(result, "ext_ablation_inverter_cell")
    for row in result.rows:
        assert row["simple_per_v"] > 5 * row["starved_per_v"]
