"""Extension bench: capacitor/platform sizing study (Section V-D.d)."""

from repro.experiments import ext_capacitor


def test_ext_capacitor(benchmark, record_experiment):
    result = benchmark(ext_capacitor.run)
    record_experiment(result, "ext_capacitor")
    mote = [r for r in result.rows if r["platform"].startswith("mote")]
    satellite = [r for r in result.rows if r["platform"].startswith("satellite")]
    # Mote: HP at small C, LP at large C (a crossover exists).
    assert mote[0]["winner"] == "HP"
    assert mote[-1]["winner"] == "LP"
    # Satellite: resolution rules everywhere.
    assert all(r["winner"] == "HP" for r in satellite)
