"""Regenerate Table IV: voltage monitors within the full system."""

import pytest

from repro.experiments import table4


def test_table4(benchmark, record_experiment):
    result = benchmark(table4.run)
    record_experiment(result, "table4")
    rows = {r["monitor"]: r for r in result.rows}
    for name, row in rows.items():
        assert row["v_ckpt"] == pytest.approx(row["paper_v_ckpt"], abs=0.02), name
